//! Tile-based rasterization on a pool of worker threads.
//!
//! "Blink rasters on a per tile basis and each tile is like a resource
//! that can be used by the GPU. In a typical scenario there are multiple
//! raster threads each rasterizing different raster tasks in parallel"
//! (Section 3.3). Tiles are claimed from a shared queue by `n_threads`
//! workers; each paints the display items intersecting its tile into a
//! private buffer, which the compositor later assembles.

use crate::decode::ImageDecodeCache;
use crate::display::{DisplayItem, DisplayList};
use crate::hook::ImageInterceptor;
use crate::layout::Rect;
use crate::net::ResourceStore;
use percival_imgcodec::draw::{blend, fill_rect};
use percival_imgcodec::Bitmap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One rastered tile.
#[derive(Debug)]
pub struct TileOutput {
    /// Tile origin in page coordinates.
    pub x: i32,
    /// Tile origin in page coordinates.
    pub y: i32,
    /// The painted pixels.
    pub bitmap: Bitmap,
}

/// Paints every display item intersecting the tile at `(tx, ty)`.
fn raster_tile(
    list: &DisplayList,
    cache: &ImageDecodeCache,
    store: &dyn ResourceStore,
    interceptor: &dyn ImageInterceptor,
    tx: i32,
    ty: i32,
    tile: u32,
) -> TileOutput {
    let mut bmp = Bitmap::new(tile as usize, tile as usize, [255, 255, 255, 255]);
    let tile_rect = Rect {
        x: tx,
        y: ty,
        w: tile,
        h: tile,
    };
    for item in &list.items {
        let rect = item.rect();
        if !rect.intersects(&tile_rect) {
            continue;
        }
        match item {
            DisplayItem::Solid { color, .. } => {
                fill_rect(&mut bmp, rect.x - tx, rect.y - ty, rect.w, rect.h, *color);
            }
            DisplayItem::Text { color, .. } => {
                // Placeholder glyph stripes: half-height lines every 14px.
                let mut line_y = rect.y;
                while line_y + 7 <= rect.y + rect.h as i32 {
                    fill_rect(
                        &mut bmp,
                        rect.x - tx + 2,
                        line_y - ty + 3,
                        rect.w.saturating_sub(4),
                        7,
                        *color,
                    );
                    line_y += 14;
                }
            }
            DisplayItem::Image { request, .. } => {
                // Deferred decoding: the first tile to need this image
                // triggers decode + interception on this raster worker.
                let outcome = cache.get_or_decode(store, interceptor, request);
                let Some(src) = outcome.bitmap.as_ref() else {
                    continue;
                };
                if outcome.blocked {
                    continue; // cleared buffer: nothing to paint
                }
                paint_scaled(&mut bmp, src, &rect, tx, ty);
            }
        }
    }
    TileOutput {
        x: tx,
        y: ty,
        bitmap: bmp,
    }
}

/// Samples `src` (nearest) into the portion of `rect` visible in the tile.
fn paint_scaled(tile: &mut Bitmap, src: &Bitmap, rect: &Rect, tx: i32, ty: i32) {
    if rect.w == 0 || rect.h == 0 {
        return;
    }
    let x0 = (rect.x - tx).max(0);
    let y0 = (rect.y - ty).max(0);
    let x1 = (rect.x - tx + rect.w as i32).min(tile.width() as i32);
    let y1 = (rect.y - ty + rect.h as i32).min(tile.height() as i32);
    for py in y0..y1 {
        let v = (py + ty - rect.y) as usize;
        let sy = (v * src.height() / rect.h as usize).min(src.height() - 1);
        for px in x0..x1 {
            let u = (px + tx - rect.x) as usize;
            let sx = (u * src.width() / rect.w as usize).min(src.width() - 1);
            let s = src.get(sx, sy);
            let d = tile.get(px as usize, py as usize);
            tile.set(px as usize, py as usize, blend(d, s));
        }
    }
}

/// Rasters the whole page as tiles, in parallel.
///
/// Returns tiles in an unspecified order (the compositor places them by
/// coordinates).
#[allow(clippy::too_many_arguments)]
pub fn raster_all(
    list: &DisplayList,
    cache: &ImageDecodeCache,
    store: &dyn ResourceStore,
    interceptor: &dyn ImageInterceptor,
    page_width: u32,
    page_height: u32,
    tile: u32,
    n_threads: usize,
) -> Vec<TileOutput> {
    assert!(tile > 0, "tile size must be positive");
    let cols = page_width.div_ceil(tile) as usize;
    let rows = page_height.div_ceil(tile) as usize;
    let total = cols * rows;
    let next = AtomicUsize::new(0);
    let n_threads = n_threads.max(1).min(total.max(1));

    let mut outputs: Vec<Option<TileOutput>> = Vec::with_capacity(total);
    outputs.resize_with(total, || None);
    let slots: Vec<parking_lot::Mutex<&mut Option<TileOutput>>> =
        outputs.iter_mut().map(parking_lot::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let tx = ((i % cols) as u32 * tile) as i32;
                let ty = ((i / cols) as u32 * tile) as i32;
                let out = raster_tile(list, cache, store, interceptor, tx, ty, tile);
                **slots[i].lock() = Some(out);
            });
        }
    });
    outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::{NoopInterceptor, UrlPredicateInterceptor};
    use crate::net::InMemoryStore;
    use percival_imgcodec::png::encode_png;

    fn simple_list() -> (DisplayList, InMemoryStore) {
        let mut store = InMemoryStore::default();
        store.insert_image(
            "http://a/red.png",
            encode_png(&Bitmap::new(4, 4, [255, 0, 0, 255])),
        );
        let list = DisplayList {
            items: vec![
                DisplayItem::Solid {
                    rect: Rect {
                        x: 0,
                        y: 0,
                        w: 64,
                        h: 16,
                    },
                    color: [0, 0, 255, 255],
                },
                DisplayItem::Image {
                    rect: Rect {
                        x: 8,
                        y: 24,
                        w: 16,
                        h: 16,
                    },
                    request: crate::structural::ImageRequest::bare("http://a/red.png", 0),
                },
            ],
            document_height: 64,
            ..Default::default()
        };
        (list, store)
    }

    #[test]
    fn tiles_cover_the_page() {
        let (list, store) = simple_list();
        let cache = ImageDecodeCache::new();
        let tiles = raster_all(&list, &cache, &store, &NoopInterceptor, 64, 64, 32, 2);
        assert_eq!(tiles.len(), 4);
    }

    #[test]
    fn items_paint_into_the_right_tiles() {
        let (list, store) = simple_list();
        let cache = ImageDecodeCache::new();
        let tiles = raster_all(&list, &cache, &store, &NoopInterceptor, 64, 64, 32, 2);
        let tl = tiles.iter().find(|t| t.x == 0 && t.y == 0).unwrap();
        assert_eq!(tl.bitmap.get(5, 5), [0, 0, 255, 255], "solid paints");
        assert_eq!(tl.bitmap.get(10, 28), [255, 0, 0, 255], "image paints");
        let br = tiles.iter().find(|t| t.x == 32 && t.y == 32).unwrap();
        assert_eq!(
            br.bitmap.get(5, 5),
            [255, 255, 255, 255],
            "empty tile stays white"
        );
    }

    #[test]
    fn blocked_image_leaves_blank_space() {
        let (list, store) = simple_list();
        let cache = ImageDecodeCache::new();
        let hook = UrlPredicateInterceptor::new(|u| u.contains("red"));
        let tiles = raster_all(&list, &cache, &store, &hook, 64, 64, 32, 2);
        let tl = tiles.iter().find(|t| t.x == 0 && t.y == 0).unwrap();
        assert_eq!(
            tl.bitmap.get(10, 28),
            [255, 255, 255, 255],
            "ad region blank"
        );
        assert_eq!(cache.blocked_count(), 1);
    }

    #[test]
    fn image_scaling_covers_target_rect() {
        let mut store = InMemoryStore::default();
        store.insert_image(
            "http://a/g.png",
            encode_png(&Bitmap::new(2, 2, [0, 255, 0, 255])),
        );
        let list = DisplayList {
            items: vec![DisplayItem::Image {
                rect: Rect {
                    x: 0,
                    y: 0,
                    w: 40,
                    h: 40,
                },
                request: crate::structural::ImageRequest::bare("http://a/g.png", 0),
            }],
            document_height: 40,
            ..Default::default()
        };
        let cache = ImageDecodeCache::new();
        let tiles = raster_all(&list, &cache, &store, &NoopInterceptor, 40, 40, 64, 1);
        let t = &tiles[0];
        assert_eq!(t.bitmap.get(0, 0), [0, 255, 0, 255]);
        assert_eq!(t.bitmap.get(39, 39), [0, 255, 0, 255]);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let (list, store) = simple_list();
        let render = |threads: usize| {
            let cache = ImageDecodeCache::new();
            let mut tiles =
                raster_all(&list, &cache, &store, &NoopInterceptor, 64, 64, 16, threads);
            tiles.sort_by_key(|t| (t.y, t.x));
            tiles.into_iter().map(|t| t.bitmap).collect::<Vec<_>>()
        };
        assert_eq!(render(1), render(4));
    }
}
