//! The end-to-end render pipeline with per-stage timing.
//!
//! Drives the full Blink-analogue sequence for one page load and reports
//! the stage costs. `render time` here corresponds to the paper's
//! `domComplete - domLoading` metric (Section 5.7): everything from
//! parsing to the composited frame.

use crate::compositor::composite;
use crate::css::CssRule;
use crate::decode::ImageDecodeCache;
use crate::display::{build_display_list, DisplayItem};
use crate::hook::ImageInterceptor;
use crate::net::{NetworkFilter, ResourceStore};
use crate::raster::raster_all;
use percival_imgcodec::Bitmap;
use std::time::Instant;

/// Pipeline tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Viewport (and frame buffer) width.
    pub viewport_width: u32,
    /// Cap on the rendered page height (memory guard).
    pub max_page_height: u32,
    /// Square tile edge.
    pub tile_size: u32,
    /// Raster worker threads ("multiple raster threads each rasterizing
    /// different raster tasks in parallel").
    pub raster_threads: usize,
    /// Maximum iframe nesting.
    pub iframe_depth_limit: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            viewport_width: 800,
            max_page_height: 2400,
            tile_size: 128,
            raster_threads: 4,
            iframe_depth_limit: 3,
        }
    }
}

/// Wall-clock stage costs, in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderTiming {
    /// Display-list construction (parse + style + layout of every frame).
    pub build_ms: f64,
    /// Batched decode + interception of the page's image set (the hook's
    /// micro-batching entry point runs here).
    pub prefetch_ms: f64,
    /// Raster (plus decode + interception of anything the prefetch missed).
    pub raster_ms: f64,
    /// Tile compositing.
    pub composite_ms: f64,
    /// Total page render time (the paper's render-time metric).
    pub total_ms: f64,
}

/// Counters from one render.
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderStats {
    /// Image paints in the display list.
    pub image_items: usize,
    /// Distinct images decoded.
    pub images_decoded: usize,
    /// Images blocked by the interceptor (PERCIVAL).
    pub images_blocked: usize,
    /// Broken images (fetch or decode failure).
    pub decode_errors: usize,
    /// Requests suppressed by the network filter (block lists).
    pub requests_blocked: usize,
    /// Iframes rendered.
    pub frames_rendered: usize,
    /// Elements in the main document.
    pub element_count: usize,
    /// Tiles rastered.
    pub tiles: usize,
}

/// A completed page render.
#[derive(Debug)]
pub struct RenderOutput {
    /// The composited frame.
    pub framebuffer: Bitmap,
    /// Stage timings.
    pub timing: RenderTiming,
    /// Counters.
    pub stats: RenderStats,
}

/// Errors from [`RenderPipeline::render`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// The top-level document was not in the store.
    DocumentNotFound(String),
}

impl core::fmt::Display for RenderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RenderError::DocumentNotFound(url) => write!(f, "document not found: {url}"),
        }
    }
}

impl std::error::Error for RenderError {}

/// The render pipeline. Holds only configuration; all per-render state
/// (decode cache, display list) is local to [`RenderPipeline::render`].
#[derive(Debug, Clone, Default)]
pub struct RenderPipeline {
    /// Tuning parameters.
    pub config: PipelineConfig,
}

impl RenderPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        RenderPipeline { config }
    }

    /// Renders one page.
    ///
    /// - `interceptor` is the post-decode hook (PERCIVAL or a no-op);
    /// - `network` is the pre-decode request filter (block lists or allow-all);
    /// - `injected_css` are extra cascade rules (cosmetic filters).
    ///
    /// # Errors
    ///
    /// [`RenderError::DocumentNotFound`] when `url` is not in the store.
    pub fn render(
        &self,
        store: &dyn ResourceStore,
        url: &str,
        interceptor: &dyn ImageInterceptor,
        network: &dyn NetworkFilter,
        injected_css: &[CssRule],
    ) -> Result<RenderOutput, RenderError> {
        let cfg = &self.config;
        let t_start = Instant::now();

        // Stage 1: DOM + style + layout + display list (recursing iframes).
        let t0 = Instant::now();
        let list = build_display_list(
            store,
            network,
            url,
            cfg.viewport_width,
            injected_css,
            cfg.iframe_depth_limit,
        )
        .ok_or_else(|| RenderError::DocumentNotFound(url.to_string()))?;
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let page_height = list.document_height.clamp(1, cfg.max_page_height);

        // Stage 2: for batching interceptors (PERCIVAL's engine), decode the
        // page's visible image set up front and inspect it as one batch —
        // one coalesced micro-batch submission instead of one inline
        // classification per raster worker. Non-batching interceptors skip
        // this and keep the lazy, raster-parallel decode path; images laid
        // out below the page-height clamp are never prefetched because the
        // raster stage would never touch them either.
        let t_prefetch = Instant::now();
        let cache = ImageDecodeCache::new();
        if interceptor.prefers_batch_prefetch() {
            let page_rect = crate::layout::Rect {
                x: 0,
                y: 0,
                w: cfg.viewport_width,
                h: page_height,
            };
            let image_refs: Vec<crate::structural::ImageRequest> = list
                .items
                .iter()
                .filter_map(|item| match item {
                    DisplayItem::Image { request, .. } if item.rect().intersects(&page_rect) => {
                        Some(request.clone())
                    }
                    _ => None,
                })
                .collect();
            cache.prefetch(store, interceptor, &image_refs);
        }
        let prefetch_ms = t_prefetch.elapsed().as_secs_f64() * 1e3;

        // Stage 3: raster tiles in parallel; anything the prefetch missed
        // still decodes lazily inside the raster workers.
        let t1 = Instant::now();
        let tiles = raster_all(
            &list,
            &cache,
            store,
            interceptor,
            cfg.viewport_width,
            page_height,
            cfg.tile_size,
            cfg.raster_threads,
        );
        let raster_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Stage 4: composite.
        let t2 = Instant::now();
        let framebuffer = composite(&tiles, cfg.viewport_width, page_height);
        let composite_ms = t2.elapsed().as_secs_f64() * 1e3;

        let stats = RenderStats {
            image_items: list
                .items
                .iter()
                .filter(|i| matches!(i, DisplayItem::Image { .. }))
                .count(),
            images_decoded: cache.len(),
            images_blocked: cache.blocked_count(),
            decode_errors: cache.error_count(),
            requests_blocked: list.requests_blocked,
            frames_rendered: list.frames_rendered,
            element_count: list.element_count,
            tiles: tiles.len(),
        };
        Ok(RenderOutput {
            framebuffer,
            timing: RenderTiming {
                build_ms,
                prefetch_ms,
                raster_ms,
                composite_ms,
                total_ms: t_start.elapsed().as_secs_f64() * 1e3,
            },
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::{NoopInterceptor, UrlPredicateInterceptor};
    use crate::net::{AllowAll, InMemoryStore, NetworkFilter, ResourceKind};
    use percival_imgcodec::png::encode_png;

    fn demo_store() -> InMemoryStore {
        let mut s = InMemoryStore::default();
        s.insert_document(
            "http://demo.web/",
            "<html><body>\
             <div class=\"hdr\" style=\"background-color:#223344;height:30\"></div>\
             <p>Some article text that wraps across lines and paints stripes.</p>\
             <img src=\"http://demo.web/pic.png\" width=\"60\" height=\"40\">\
             <div class=\"ad-banner\"><img src=\"http://adnet.web/ad.png\" width=\"100\" height=\"50\"></div>\
             <iframe src=\"http://syn.web/f\" width=\"120\" height=\"80\"></iframe>\
             </body></html>",
        );
        s.insert_document(
            "http://syn.web/f",
            "<html><body><img src=\"http://adnet.web/ad2.png\" width=\"90\" height=\"60\"></body></html>",
        );
        s.insert_image(
            "http://demo.web/pic.png",
            encode_png(&Bitmap::new(8, 8, [10, 200, 10, 255])),
        );
        s.insert_image(
            "http://adnet.web/ad.png",
            encode_png(&Bitmap::new(8, 8, [200, 10, 10, 255])),
        );
        s.insert_image(
            "http://adnet.web/ad2.png",
            encode_png(&Bitmap::new(8, 8, [200, 10, 99, 255])),
        );
        s
    }

    #[test]
    fn renders_end_to_end() {
        let pipeline = RenderPipeline::default();
        let out = pipeline
            .render(
                &demo_store(),
                "http://demo.web/",
                &NoopInterceptor,
                &AllowAll,
                &[],
            )
            .unwrap();
        assert_eq!(out.stats.image_items, 3);
        assert_eq!(out.stats.images_decoded, 3);
        assert_eq!(out.stats.images_blocked, 0);
        assert_eq!(out.stats.frames_rendered, 1);
        assert!(out.timing.total_ms > 0.0);
        assert!(out.framebuffer.width() == 800);
    }

    #[test]
    fn interceptor_blocks_ad_pixels() {
        let pipeline = RenderPipeline::default();
        let hook = UrlPredicateInterceptor::new(|u| u.contains("adnet"));
        let out = pipeline
            .render(&demo_store(), "http://demo.web/", &hook, &AllowAll, &[])
            .unwrap();
        assert_eq!(out.stats.images_blocked, 2);
        // The content image still decodes and paints.
        assert_eq!(out.stats.images_decoded, 3);
    }

    #[test]
    fn network_filter_prevents_decode_entirely() {
        struct Shields;
        impl NetworkFilter for Shields {
            fn allow(&self, url: &str, _k: ResourceKind, _s: &str) -> bool {
                !url.contains("adnet") && !url.contains("syn.web")
            }
        }
        let pipeline = RenderPipeline::default();
        let out = pipeline
            .render(
                &demo_store(),
                "http://demo.web/",
                &NoopInterceptor,
                &Shields,
                &[],
            )
            .unwrap();
        // One image blocked directly + the iframe subdocument request.
        assert_eq!(out.stats.requests_blocked, 2);
        assert_eq!(out.stats.images_decoded, 1);
    }

    #[test]
    fn missing_document_errors() {
        let pipeline = RenderPipeline::default();
        let err = pipeline
            .render(
                &InMemoryStore::default(),
                "http://gone/",
                &NoopInterceptor,
                &AllowAll,
                &[],
            )
            .unwrap_err();
        assert!(matches!(err, RenderError::DocumentNotFound(_)));
    }

    #[test]
    fn framebuffers_identical_across_thread_counts() {
        let store = demo_store();
        let render_with = |threads: usize| {
            let pipeline = RenderPipeline::new(PipelineConfig {
                raster_threads: threads,
                ..Default::default()
            });
            pipeline
                .render(&store, "http://demo.web/", &NoopInterceptor, &AllowAll, &[])
                .unwrap()
                .framebuffer
        };
        assert_eq!(render_with(1), render_with(8));
    }

    #[test]
    fn cosmetic_injection_removes_ad_container() {
        let pipeline = RenderPipeline::default();
        let hide = vec![crate::css::CssRule::hide(".ad-banner").unwrap()];
        let out = pipeline
            .render(
                &demo_store(),
                "http://demo.web/",
                &NoopInterceptor,
                &AllowAll,
                &hide,
            )
            .unwrap();
        assert_eq!(
            out.stats.image_items, 2,
            "hidden container's image never paints"
        );
    }
}
