//! Block layout: computes the on-screen rectangle of every visible node.
//!
//! The corpus uses block-level content exclusively, so a vertical-stacking
//! block layout (explicit sizes from style, intrinsic defaults for
//! replaced elements, text measured by a fixed-metric font) reproduces the
//! geometry work Blink's layout stage performs — enough for display-list
//! construction and render-time accounting.

use crate::dom::{Document, NodeId, NodeKind};
use crate::style::ComputedStyles;

/// An axis-aligned rectangle in page coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width.
    pub w: u32,
    /// Height.
    pub h: u32,
}

impl Rect {
    /// True if the rectangles overlap.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.x + other.w as i32
            && other.x < self.x + self.w as i32
            && self.y < other.y + other.h as i32
            && other.y < self.y + self.h as i32
    }
}

/// Layout result: a rect per node (`None` = hidden or zero-area).
#[derive(Debug, Clone)]
pub struct LayoutTree {
    /// Indexed by [`NodeId`].
    pub rects: Vec<Option<Rect>>,
    /// Total document height in pixels.
    pub document_height: u32,
}

/// Fixed text metrics (stand-in font).
const LINE_HEIGHT: u32 = 14;
const CHAR_WIDTH: u32 = 7;
/// Vertical gap between stacked blocks.
const BLOCK_GAP: u32 = 2;

/// Default intrinsic size of replaced elements without width/height.
const REPLACED_DEFAULT: (u32, u32) = (100, 80);

fn is_replaced(tag: &str) -> bool {
    matches!(tag, "img" | "iframe" | "canvas")
}

/// Computes layout for a styled document at the given viewport width.
pub fn layout(doc: &Document, styles: &ComputedStyles, viewport_width: u32) -> LayoutTree {
    let mut rects: Vec<Option<Rect>> = vec![None; doc.nodes.len()];
    let h = layout_node(doc, styles, &mut rects, doc.root(), 0, 0, viewport_width);
    LayoutTree {
        rects,
        document_height: h,
    }
}

/// Lays out `id` at `(x, y)` within `avail_w`; returns the height consumed.
fn layout_node(
    doc: &Document,
    styles: &ComputedStyles,
    rects: &mut Vec<Option<Rect>>,
    id: NodeId,
    x: i32,
    y: i32,
    avail_w: u32,
) -> u32 {
    match &doc.nodes[id].kind {
        NodeKind::Text(text) => {
            let chars_per_line = (avail_w / CHAR_WIDTH).max(1) as usize;
            let lines = text.len().div_ceil(chars_per_line).max(1) as u32;
            let h = lines * LINE_HEIGHT;
            rects[id] = Some(Rect {
                x,
                y,
                w: avail_w,
                h,
            });
            h
        }
        NodeKind::Element { tag, .. } => {
            let style = &styles.styles[id];
            if style.display_none {
                return 0;
            }
            let (def_w, def_h) = if is_replaced(tag) {
                REPLACED_DEFAULT
            } else {
                (avail_w, 0)
            };
            let w = style.width.unwrap_or(def_w).min(avail_w.max(1));
            if is_replaced(tag) {
                let h = style.height.unwrap_or(def_h);
                rects[id] = Some(Rect { x, y, w, h });
                return h;
            }
            // Containers: stack children vertically.
            let mut cursor = y;
            let children = doc.nodes[id].children.clone();
            for child in children {
                let used = layout_node(doc, styles, rects, child, x, cursor, w);
                if used > 0 {
                    cursor += (used + BLOCK_GAP) as i32;
                }
            }
            let content_h = (cursor - y) as u32;
            let h = style.height.unwrap_or(content_h);
            rects[id] = Some(Rect { x, y, w, h });
            h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::parse;
    use crate::style::resolve_styles;

    fn layout_of(html: &str) -> (Document, LayoutTree) {
        let doc = parse(html);
        let styles = resolve_styles(&doc, &[]);
        let tree = layout(&doc, &styles, 400);
        (doc, tree)
    }

    #[test]
    fn blocks_stack_vertically() {
        let (doc, tree) = layout_of(
            "<body><div style=\"height:50\"></div><div style=\"height:30\"></div></body>",
        );
        let divs = doc.elements_by_tag("div");
        let a = tree.rects[divs[0]].unwrap();
        let b = tree.rects[divs[1]].unwrap();
        assert_eq!(a.h, 50);
        assert!(b.y >= a.y + 50, "second block below first: {b:?}");
    }

    #[test]
    fn replaced_elements_use_attributes() {
        let (doc, tree) = layout_of("<body><img src=\"x\" width=\"120\" height=\"60\"></body>");
        let img = doc.elements_by_tag("img")[0];
        let r = tree.rects[img].unwrap();
        assert_eq!((r.w, r.h), (120, 60));
    }

    #[test]
    fn replaced_elements_have_intrinsic_defaults() {
        let (doc, tree) = layout_of("<body><iframe src=\"f\"></iframe></body>");
        let f = doc.elements_by_tag("iframe")[0];
        let r = tree.rects[f].unwrap();
        assert_eq!((r.w, r.h), (100, 80));
    }

    #[test]
    fn hidden_elements_take_no_space() {
        let (doc, tree) = layout_of(
            "<body><div style=\"display:none;height:500\"><img src=\"x\"></div>\
             <div style=\"height:20\"></div></body>",
        );
        let divs = doc.elements_by_tag("div");
        assert!(tree.rects[divs[0]].is_none());
        let visible = tree.rects[divs[1]].unwrap();
        assert!(visible.y < 10, "hidden block should not push content down");
        let img = doc.elements_by_tag("img")[0];
        assert!(tree.rects[img].is_none());
    }

    #[test]
    fn container_height_wraps_children() {
        let (doc, tree) = layout_of(
            "<body><div><img src=\"a\" width=\"50\" height=\"40\">\
             <img src=\"b\" width=\"50\" height=\"40\"></div></body>",
        );
        let div = doc.elements_by_tag("div")[0];
        let r = tree.rects[div].unwrap();
        assert!(r.h >= 80, "container wraps stacked children: {r:?}");
    }

    #[test]
    fn text_height_scales_with_length() {
        let (doc, tree) = layout_of("<body><p>hi</p></body>");
        let short = tree.rects[doc.nodes[doc.elements_by_tag("p")[0]].children[0]]
            .unwrap()
            .h;
        let long_text = "x".repeat(600);
        let (doc2, tree2) = layout_of(&format!("<body><p>{long_text}</p></body>"));
        let long = tree2.rects[doc2.nodes[doc2.elements_by_tag("p")[0]].children[0]]
            .unwrap()
            .h;
        assert!(long > short * 5, "600 chars should wrap many lines");
    }

    #[test]
    fn rect_intersection() {
        let a = Rect {
            x: 0,
            y: 0,
            w: 10,
            h: 10,
        };
        let b = Rect {
            x: 5,
            y: 5,
            w: 10,
            h: 10,
        };
        let c = Rect {
            x: 10,
            y: 0,
            w: 5,
            h: 5,
        };
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c)); // touching edges do not overlap
    }

    #[test]
    fn document_height_positive() {
        let (_, tree) = layout_of("<body><div style=\"height:100\"></div></body>");
        assert!(tree.document_height >= 100);
    }
}
