//! The DOM: an arena of element and text nodes.

use std::collections::HashMap;

/// Index of a node in its document's arena.
pub type NodeId = usize;

/// Node payload.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// An element with a tag name and attributes.
    Element {
        /// Lower-case tag name.
        tag: String,
        /// Attribute map (names lower-cased).
        attrs: HashMap<String, String>,
    },
    /// A text run.
    Text(String),
}

/// One DOM node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Parent node, if any.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
    /// Payload.
    pub kind: NodeKind,
}

/// A parsed document: node arena plus the root element.
#[derive(Debug, Clone, Default)]
pub struct Document {
    /// All nodes; index 0 is the root (`<html>`).
    pub nodes: Vec<Node>,
}

impl Document {
    /// Creates a document containing only a root `<html>` element.
    pub fn with_root() -> Self {
        let mut doc = Document::default();
        doc.nodes.push(Node {
            parent: None,
            children: Vec::new(),
            kind: NodeKind::Element {
                tag: "html".to_string(),
                attrs: HashMap::new(),
            },
        });
        doc
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Appends a new element under `parent`, returning its id.
    pub fn append_element(
        &mut self,
        parent: NodeId,
        tag: &str,
        attrs: HashMap<String, String>,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            parent: Some(parent),
            children: Vec::new(),
            kind: NodeKind::Element {
                tag: tag.to_ascii_lowercase(),
                attrs,
            },
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Appends a text node under `parent`, returning its id.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            parent: Some(parent),
            children: Vec::new(),
            kind: NodeKind::Text(text.to_string()),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Tag name of an element node; `None` for text nodes.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id].kind {
            NodeKind::Element { tag, .. } => Some(tag),
            NodeKind::Text(_) => None,
        }
    }

    /// Attribute lookup on an element node.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.nodes[id].kind {
            NodeKind::Element { attrs, .. } => attrs.get(name).map(String::as_str),
            NodeKind::Text(_) => None,
        }
    }

    /// The element's `id` attribute.
    pub fn element_id(&self, id: NodeId) -> Option<&str> {
        self.attr(id, "id")
    }

    /// Whitespace-separated classes of an element.
    pub fn classes(&self, id: NodeId) -> impl Iterator<Item = &str> {
        self.attr(id, "class").unwrap_or("").split_whitespace()
    }

    /// True if the element carries `class_name`.
    pub fn has_class(&self, id: NodeId, class_name: &str) -> bool {
        self.classes(id).any(|c| c == class_name)
    }

    /// Depth-first pre-order traversal of all node ids from the root.
    pub fn walk(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children reversed so traversal is document order.
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All element ids with the given tag.
    pub fn elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        self.walk()
            .into_iter()
            .filter(|&id| self.tag(id) == Some(tag))
            .collect()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        let mut d = Document::with_root();
        let body = d.append_element(d.root(), "BODY", HashMap::new());
        let mut attrs = HashMap::new();
        attrs.insert("class".to_string(), "hero big".to_string());
        attrs.insert("id".to_string(), "main".to_string());
        let div = d.append_element(body, "div", attrs);
        d.append_text(div, "hello");
        let mut img_attrs = HashMap::new();
        img_attrs.insert("src".to_string(), "http://x.web/a.png".to_string());
        d.append_element(div, "img", img_attrs);
        d
    }

    #[test]
    fn tags_are_lowercased() {
        let d = doc();
        assert_eq!(d.tag(1), Some("body"));
    }

    #[test]
    fn class_and_id_accessors() {
        let d = doc();
        assert!(d.has_class(2, "hero"));
        assert!(d.has_class(2, "big"));
        assert!(!d.has_class(2, "her"));
        assert_eq!(d.element_id(2), Some("main"));
        assert_eq!(d.element_id(1), None);
    }

    #[test]
    fn walk_is_document_order() {
        let d = doc();
        assert_eq!(d.walk(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn elements_by_tag_finds_images() {
        let d = doc();
        let imgs = d.elements_by_tag("img");
        assert_eq!(imgs.len(), 1);
        assert_eq!(d.attr(imgs[0], "src"), Some("http://x.web/a.png"));
    }

    #[test]
    fn element_count_excludes_text() {
        assert_eq!(doc().element_count(), 4);
    }
}
