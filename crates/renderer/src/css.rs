//! A CSS subset: stylesheets of `selector { prop: value; }` rules and
//! inline `style=""` declaration lists.
//!
//! Supported properties are the ones layout/paint consume: `display`
//! (`none`/`block`), `width`, `height` (px numbers), `background-color`
//! (`#rgb`/`#rrggbb`). Supported selectors are the compound tag/class/id
//! subset (shared shape with the filter-list engine's cosmetic selectors).

/// A parsed declaration block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Declarations {
    /// `display: none`.
    pub display_none: bool,
    /// `width` in pixels.
    pub width: Option<u32>,
    /// `height` in pixels.
    pub height: Option<u32>,
    /// `background-color` as RGBA.
    pub background: Option<[u8; 4]>,
}

impl Declarations {
    /// Overlays `other` on `self` (later/inline declarations win).
    pub fn apply(&mut self, other: &Declarations) {
        if other.display_none {
            self.display_none = true;
        }
        if other.width.is_some() {
            self.width = other.width;
        }
        if other.height.is_some() {
            self.height = other.height;
        }
        if other.background.is_some() {
            self.background = other.background;
        }
    }
}

/// One stylesheet rule: selector text + declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct CssRule {
    /// Selector parts: (tag, id, classes) — compound simple selector.
    pub tag: Option<String>,
    /// Required id.
    pub id: Option<String>,
    /// Required classes.
    pub classes: Vec<String>,
    /// The declarations.
    pub decls: Declarations,
}

/// Parses a hex color `#rgb` or `#rrggbb`.
pub fn parse_color(s: &str) -> Option<[u8; 4]> {
    let hex = s.trim().strip_prefix('#')?;
    let v = |h: &str| u8::from_str_radix(h, 16).ok();
    match hex.len() {
        3 => {
            let r = v(&hex[0..1])?;
            let g = v(&hex[1..2])?;
            let b = v(&hex[2..3])?;
            Some([r * 17, g * 17, b * 17, 255])
        }
        6 => Some([v(&hex[0..2])?, v(&hex[2..4])?, v(&hex[4..6])?, 255]),
        _ => None,
    }
}

fn parse_px(s: &str) -> Option<u32> {
    s.trim().trim_end_matches("px").trim().parse().ok()
}

/// Parses a `prop: value; prop: value` declaration list.
pub fn parse_declarations(text: &str) -> Declarations {
    let mut d = Declarations::default();
    for decl in text.split(';') {
        let Some((prop, value)) = decl.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match prop.trim().to_ascii_lowercase().as_str() {
            "display" if value.eq_ignore_ascii_case("none") => {
                d.display_none = true;
            }
            "width" => d.width = parse_px(value),
            "height" => d.height = parse_px(value),
            "background-color" | "background" => d.background = parse_color(value),
            _ => {} // unknown properties ignored, like a real engine
        }
    }
    d
}

fn parse_selector(text: &str) -> Option<(Option<String>, Option<String>, Vec<String>)> {
    let text = text.trim();
    if text.is_empty() || text.contains([' ', '>', '+', '[', ':']) {
        return None; // combinators/pseudo-classes unsupported
    }
    let mut tag = None;
    let mut id = None;
    let mut classes = Vec::new();
    let mut rest = text;
    let head_end = rest.find(['.', '#']).unwrap_or(rest.len());
    if head_end > 0 {
        let t = &rest[..head_end];
        if t != "*" {
            tag = Some(t.to_ascii_lowercase());
        }
        rest = &rest[head_end..];
    }
    while !rest.is_empty() {
        let marker = rest.as_bytes()[0];
        rest = &rest[1..];
        let end = rest.find(['.', '#']).unwrap_or(rest.len());
        let name = &rest[..end];
        if name.is_empty() {
            return None;
        }
        match marker {
            b'.' => classes.push(name.to_string()),
            b'#' => id = Some(name.to_string()),
            _ => return None,
        }
        rest = &rest[end..];
    }
    Some((tag, id, classes))
}

/// Parses a stylesheet. Unparsable rules are skipped (CSS error recovery).
pub fn parse_stylesheet(text: &str) -> Vec<CssRule> {
    let mut rules = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('{') {
        let selector_text = &rest[..open];
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let body = &rest[open + 1..open + close];
        for sel in selector_text.split(',') {
            if let Some((tag, id, classes)) = parse_selector(sel) {
                rules.push(CssRule {
                    tag,
                    id,
                    classes,
                    decls: parse_declarations(body),
                });
            }
        }
        rest = &rest[open + close + 1..];
    }
    rules
}

impl CssRule {
    /// Builds a `display:none` rule for a compound selector string — how
    /// cosmetic filter rules are injected into the cascade (the "Brave
    /// shields" configuration).
    pub fn hide(selector: &str) -> Option<CssRule> {
        let (tag, id, classes) = parse_selector(selector)?;
        Some(CssRule {
            tag,
            id,
            classes,
            decls: Declarations {
                display_none: true,
                ..Declarations::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_colors() {
        assert_eq!(parse_color("#ff0080"), Some([255, 0, 128, 255]));
        assert_eq!(parse_color("#fff"), Some([255, 255, 255, 255]));
        assert_eq!(parse_color("red"), None);
        assert_eq!(parse_color("#12345"), None);
    }

    #[test]
    fn parses_declarations() {
        let d =
            parse_declarations("width: 240; height:60px; background-color:#222233; display:none");
        assert_eq!(d.width, Some(240));
        assert_eq!(d.height, Some(60));
        assert_eq!(d.background, Some([0x22, 0x22, 0x33, 255]));
        assert!(d.display_none);
    }

    #[test]
    fn unknown_properties_ignored() {
        let d = parse_declarations("font-family: sans; width: 10");
        assert_eq!(d.width, Some(10));
    }

    #[test]
    fn parses_stylesheet_with_recovery() {
        let rules = parse_stylesheet(
            ".ad-banner { display: none; }\n\
             div.hero#main { width: 300 }\n\
             p > span { width: 1 }\n\
             h1, .title { height: 40 }",
        );
        // `p > span` is dropped; `h1, .title` expands to two rules.
        assert_eq!(rules.len(), 4);
        assert!(rules[0].decls.display_none);
        assert_eq!(rules[1].tag.as_deref(), Some("div"));
        assert_eq!(rules[1].id.as_deref(), Some("main"));
        assert_eq!(rules[1].classes, vec!["hero"]);
        assert_eq!(rules[2].tag.as_deref(), Some("h1"));
        assert_eq!(rules[3].classes, vec!["title"]);
    }

    #[test]
    fn apply_overlays_later_declarations() {
        let mut base = parse_declarations("width: 100; height: 50");
        base.apply(&parse_declarations("width: 200; display:none"));
        assert_eq!(base.width, Some(200));
        assert_eq!(base.height, Some(50));
        assert!(base.display_none);
    }

    #[test]
    fn hide_builds_display_none_rules() {
        let r = CssRule::hide(".sponsored").unwrap();
        assert!(r.decls.display_none);
        assert_eq!(r.classes, vec!["sponsored"]);
        assert!(CssRule::hide("div > p").is_none());
    }
}
