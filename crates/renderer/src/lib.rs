//! A Blink-style rendering pipeline with a post-decode image hook.
//!
//! This crate is the substrate for the paper's central system claim: that an
//! image classifier can sit *inside* the rendering pipeline — "after the
//! Image Decoding Step, during the raster phase" (Section 2.1) — where it
//! sees the raw pixels of every image regardless of format or loading
//! mechanism, before anything reaches the screen.
//!
//! The stages mirror Blink's (Section 3.2): parse HTML into a DOM
//! ([`html`], [`dom`]), resolve styles ([`css`], [`style`]), build a layout
//! tree ([`layout`]), record a display list ([`display`]), decode images
//! deferred-and-once ([`decode`], the `DeferredImageDecoder` /
//! `DecodingImageGenerator` analogue), rasterize tiles on a pool of worker
//! threads ([`raster`]) and composite them into a frame buffer
//! ([`compositor`]). The [`hook::ImageInterceptor`] trait is the choke
//! point: implementations (PERCIVAL's CNN in `percival-core`, or a no-op)
//! run on the raster workers, in parallel, against decoded pixel buffers.
//!
//! [`pipeline::RenderPipeline`] drives the whole thing and reports
//! per-stage timings — the substrate for the render-performance evaluation
//! (Figures 14 and 15).

pub mod compositor;
pub mod css;
pub mod decode;
pub mod display;
pub mod dom;
pub mod hook;
pub mod html;
pub mod layout;
pub mod net;
pub mod pipeline;
pub mod raster;
pub mod structural;
pub mod style;

pub use decode::ImageDecodeCache;
pub use dom::{Document, NodeId};
pub use hook::{ImageInterceptor, ImageMeta, InterceptAction, NoopInterceptor};
pub use net::{InMemoryStore, ResourceStore};
pub use pipeline::{PipelineConfig, RenderOutput, RenderPipeline, RenderTiming};
pub use structural::{ImageRequest, StructuralFeatures, IAB_SIZES};
