//! Memoized classification — the paper's low-latency deployment.
//!
//! "The alternative low-latency approach we propose is classifying images
//! asynchronously, which allows for memoization of the results, thus
//! speeding up the classification process" (Section 1.1). Verdicts are
//! keyed by the decoded buffer's content hash, so the same creative served
//! on many pages (the common case for ad networks) is classified once.

use crate::classifier::{Classifier, Prediction};
use parking_lot::Mutex;
use percival_imgcodec::Bitmap;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// A bounded LRU of content-hash -> P(ad).
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    map: HashMap<u64, (f32, u64)>,
    queue: VecDeque<(u64, u64)>,
    seq: u64,
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            queue: VecDeque::new(),
            seq: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<f32> {
        let (value, seq_slot) = self.map.get_mut(&key)?;
        let value = *value;
        // Touch: re-stamp and re-queue; stale queue entries are skipped
        // lazily during eviction.
        self.seq += 1;
        *seq_slot = self.seq;
        self.queue.push_back((key, self.seq));
        // Each touch leaves a stale stamp behind; without compaction a
        // read-heavy workload (the memoization hit path) grows the queue
        // without bound even though the map stays within capacity.
        if self.queue.len() > 2 * self.capacity {
            self.compact();
        }
        Some(value)
    }

    /// Drops every stale queue entry, keeping only each key's latest stamp.
    fn compact(&mut self) {
        let map = &self.map;
        self.queue
            .retain(|(k, s)| map.get(k).is_some_and(|(_, cur)| *cur == *s));
    }

    fn insert(&mut self, key: u64, value: f32) {
        self.seq += 1;
        self.map.insert(key, (value, self.seq));
        self.queue.push_back((key, self.seq));
        while self.map.len() > self.capacity {
            let Some((k, s)) = self.queue.pop_front() else {
                break;
            };
            // Only evict if this queue entry is the key's latest stamp.
            if self.map.get(&k).is_some_and(|(_, cur)| *cur == s) {
                self.map.remove(&k);
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A classifier wrapper that memoizes verdicts by image content.
#[derive(Debug)]
pub struct MemoizedClassifier {
    classifier: Classifier,
    cache: Mutex<LruCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoizedClassifier {
    /// Wraps `classifier` with a cache of `capacity` verdicts.
    pub fn new(classifier: Classifier, capacity: usize) -> Self {
        MemoizedClassifier {
            classifier,
            cache: Mutex::new(LruCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped classifier.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// Returns the cached verdict for a content hash without classifying.
    pub fn cached(&self, content_hash: u64) -> Option<f32> {
        self.cache.lock().get(content_hash)
    }

    /// Inserts a verdict computed elsewhere (the inference engine uses this).
    pub fn insert(&self, content_hash: u64, p_ad: f32) {
        self.cache.lock().insert(content_hash, p_ad);
    }

    /// Counts a cache hit observed by an external lookup path (the engine).
    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a cache miss observed by an external lookup path (the engine).
    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Classifies with memoization: a cache hit skips the CNN entirely.
    pub fn classify(&self, bitmap: &Bitmap) -> Prediction {
        let key = bitmap.content_hash();
        if let Some(p_ad) = self.cached(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Prediction {
                p_ad,
                is_ad: p_ad >= self.classifier.threshold(),
                elapsed: std::time::Duration::ZERO,
            };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let pred = self.classifier.classify(bitmap);
        self.insert(key, pred.p_ad);
        pred
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.cache.lock().len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::percival_net_slim;
    use percival_nn::init::kaiming_init;
    use percival_util::Pcg32;

    fn memo(capacity: usize) -> MemoizedClassifier {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(7));
        MemoizedClassifier::new(Classifier::new(model, 32), capacity)
    }

    #[test]
    fn second_classification_hits_cache() {
        let m = memo(16);
        let bmp = Bitmap::new(20, 20, [120, 40, 200, 255]);
        let first = m.classify(&bmp);
        let second = m.classify(&bmp);
        assert_eq!(first.p_ad, second.p_ad);
        assert_eq!(
            second.elapsed,
            std::time::Duration::ZERO,
            "hit skips the CNN"
        );
        assert_eq!(m.stats(), (1, 1));
    }

    #[test]
    fn different_content_misses() {
        let m = memo(16);
        m.classify(&Bitmap::new(8, 8, [1, 1, 1, 255]));
        m.classify(&Bitmap::new(8, 8, [2, 2, 2, 255]));
        assert_eq!(m.stats(), (0, 2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn capacity_is_enforced_with_lru_order() {
        let mut lru = LruCache::new(2);
        lru.insert(1, 0.1);
        lru.insert(2, 0.2);
        assert_eq!(lru.get(1), Some(0.1)); // touch 1: now 2 is the LRU
        lru.insert(3, 0.3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(2), None, "2 was least-recently used");
        assert_eq!(lru.get(1), Some(0.1));
        assert_eq!(lru.get(3), Some(0.3));
    }

    #[test]
    fn repeated_touches_do_not_grow_the_queue_unboundedly() {
        let mut lru = LruCache::new(8);
        for k in 0..8 {
            lru.insert(k, k as f32 / 10.0);
        }
        for _ in 0..10_000 {
            assert!(lru.get(3).is_some());
        }
        assert!(
            lru.queue.len() <= 2 * lru.capacity + 1,
            "touch stamps must be compacted: queue holds {}",
            lru.queue.len()
        );
        // LRU semantics survive compaction: 3 is hot, inserting past
        // capacity evicts someone else.
        lru.insert(100, 0.5);
        assert_eq!(lru.get(3), Some(0.3));
        assert_eq!(lru.len(), 8);
    }

    #[test]
    fn memoization_is_thread_safe() {
        let m = memo(64);
        let bmp = Bitmap::new(16, 16, [9, 9, 9, 255]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        m.classify(&bmp);
                    }
                });
            }
        });
        let (hits, misses) = m.stats();
        assert_eq!(hits + misses, 32);
        assert!(misses <= 4, "at most one miss per racing thread: {misses}");
    }
}
