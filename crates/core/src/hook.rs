//! PERCIVAL plugged into the rendering pipeline.
//!
//! [`PercivalHook`] is the synchronous, in-critical-path deployment: every
//! decoded image is classified before raster (Sections 2.1 and 5.7). Since
//! the batched-engine refactor both hooks submit to a shared
//! [`InferenceEngine`] instead of running the CNN inline: concurrent raster
//! workers hitting the hook at the same time have their images coalesced
//! into one micro-batch, and identical in-flight creatives share a single
//! CNN pass. [`AsyncPercivalHook`] is the paper's low-latency alternative:
//! misses are classified off the critical path and only *memoized* verdicts
//! block, so the first sighting of a creative renders unhindered but every
//! later sighting is blocked instantly (Section 1.1, and the repeat-visit
//! discussion in Section 6).

use crate::cascade::{Cascade, CascadeDecision};
use crate::classifier::Classifier;
use crate::engine::{EngineConfig, InferenceEngine};
use crate::flight::AdmissionHint;
use crate::memo::MemoizedClassifier;
use crate::policy::BlockPolicy;
use percival_imgcodec::Bitmap;
use percival_renderer::{ImageInterceptor, ImageMeta, InterceptAction};
use percival_util::telem::{self, emit_early as emit_early_trace, StageKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters exported by the hooks.
#[derive(Debug, Default)]
pub struct HookStats {
    classified: AtomicU64,
    blocked: AtomicU64,
    classify_ns: AtomicU64,
    skipped_small: AtomicU64,
}

impl HookStats {
    /// Images run through the CNN.
    pub fn classified(&self) -> u64 {
        self.classified.load(Ordering::Relaxed)
    }

    /// Images judged to be ads.
    pub fn blocked(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }

    /// Total classification time.
    pub fn classify_time(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.classify_ns.load(Ordering::Relaxed))
    }

    /// Images below the size floor (tracking pixels etc.).
    pub fn skipped_small(&self) -> u64 {
        self.skipped_small.load(Ordering::Relaxed)
    }
}

/// The synchronous in-pipeline deployment, backed by the micro-batching
/// [`InferenceEngine`].
pub struct PercivalHook {
    engine: InferenceEngine,
    policy: BlockPolicy,
    /// Images with an edge below this are not classified (1 disables the
    /// floor; tracking pixels are upscaled noise either way).
    min_edge: usize,
    stats: HookStats,
}

impl PercivalHook {
    /// Builds a hook around a trained classifier with the default policy.
    pub fn new(classifier: Classifier) -> Self {
        Self::with_engine_config(classifier, EngineConfig::default())
    }

    /// Builds a hook with explicit engine tuning (batch size, cache size).
    pub fn with_engine_config(classifier: Classifier, cfg: EngineConfig) -> Self {
        PercivalHook {
            engine: InferenceEngine::new(classifier, cfg),
            policy: BlockPolicy::Clear,
            min_edge: 1,
            stats: HookStats::default(),
        }
    }

    /// Sets the blocked-frame policy.
    pub fn with_policy(mut self, policy: BlockPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the minimum classified edge length.
    pub fn with_min_edge(mut self, min_edge: usize) -> Self {
        self.min_edge = min_edge.max(1);
        self
    }

    /// Counter access.
    pub fn stats(&self) -> &HookStats {
        &self.stats
    }

    /// The wrapped memoized classifier (the engine's verdict cache).
    pub fn memo(&self) -> &MemoizedClassifier {
        self.engine.memo()
    }

    /// The underlying micro-batching engine.
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    /// Applies the blocked-frame policy to a verdict.
    fn verdict_to_action(&self, is_ad: bool, bitmap: &mut Bitmap) -> InterceptAction {
        if !is_ad {
            return InterceptAction::Keep;
        }
        self.stats.blocked.fetch_add(1, Ordering::Relaxed);
        match &self.policy {
            // The pipeline clears blocked buffers itself.
            BlockPolicy::Clear => InterceptAction::Block,
            // Replacement paints over the buffer and lets it through.
            replace @ BlockPolicy::Replace(_) => {
                replace.apply(bitmap);
                InterceptAction::Keep
            }
        }
    }
}

impl ImageInterceptor for PercivalHook {
    fn inspect(&self, bitmap: &mut Bitmap, _meta: &ImageMeta<'_>) -> InterceptAction {
        if bitmap.width() < self.min_edge || bitmap.height() < self.min_edge {
            self.stats.skipped_small.fetch_add(1, Ordering::Relaxed);
            return InterceptAction::Keep;
        }
        let pred = if telem::enabled() && telem::sample_request() {
            // Sampled: hash explicitly so the span and the keyed submission
            // share one computation, and register the key so the engine's
            // batcher can attribute its QueueWait/PlanOp/Publish spans.
            let start = telem::now_ns();
            let img = bitmap.hashed();
            let hashed = telem::now_ns();
            let key = img.key();
            telem::register(key, start);
            telem::emit(key, StageKind::Hash, start, hashed - start);
            let submit_start = telem::now_ns();
            let ticket = self.engine.submit_with_key(&img);
            telem::emit(
                key,
                StageKind::Submit,
                submit_start,
                telem::now_ns().saturating_sub(submit_start),
            );
            let pred = ticket.wait();
            // A memo hit resolves without a publish; close the trace here
            // (single-shot: the batcher won for queued submissions).
            if let Some(s) = telem::complete(key) {
                let end = telem::now_ns();
                telem::emit(key, StageKind::EndToEnd, s, end.saturating_sub(s));
            }
            pred
        } else {
            self.engine.submit_wait(bitmap)
        };
        self.stats.classified.fetch_add(1, Ordering::Relaxed);
        self.stats
            .classify_ns
            .fetch_add(pred.elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.verdict_to_action(pred.is_ad, bitmap)
    }

    fn inspect_batch(&self, batch: &mut [(&mut Bitmap, &ImageMeta<'_>)]) -> Vec<InterceptAction> {
        // Submit everything first so the engine can coalesce the whole set
        // into micro-batches, then collect verdicts in order.
        let tickets: Vec<_> = batch
            .iter()
            .map(|(bitmap, _)| {
                if bitmap.width() < self.min_edge || bitmap.height() < self.min_edge {
                    self.stats.skipped_small.fetch_add(1, Ordering::Relaxed);
                    None
                } else {
                    Some(self.engine.submit(bitmap))
                }
            })
            .collect();
        batch
            .iter_mut()
            .zip(tickets)
            .map(|((bitmap, _), ticket)| match ticket {
                None => InterceptAction::Keep,
                Some(ticket) => {
                    let pred = ticket.wait();
                    self.stats.classified.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .classify_ns
                        .fetch_add(pred.elapsed.as_nanos() as u64, Ordering::Relaxed);
                    self.verdict_to_action(pred.is_ad, bitmap)
                }
            })
            .collect()
    }

    fn prefers_batch_prefetch(&self) -> bool {
        true
    }
}

/// The asynchronous deployment: memoized verdicts block instantly; cache
/// misses render once and are classified off the critical path by the
/// micro-batching [`InferenceEngine`].
pub struct AsyncPercivalHook {
    engine: InferenceEngine,
    cascade: Option<Arc<Cascade>>,
    stats: HookStats,
}

impl AsyncPercivalHook {
    /// Spawns the background classification engine.
    pub fn new(classifier: Classifier) -> Self {
        Self::with_engine_config(classifier, EngineConfig::default())
    }

    /// Spawns the engine with explicit tuning.
    pub fn with_engine_config(classifier: Classifier, cfg: EngineConfig) -> Self {
        AsyncPercivalHook {
            engine: InferenceEngine::new(classifier, cfg),
            cascade: None,
            stats: HookStats::default(),
        }
    }

    /// Puts a [`Cascade`] front-end ahead of the engine: requests tier 0/1
    /// resolve never touch the verdict cache or the background queue.
    pub fn with_cascade(mut self, cascade: Arc<Cascade>) -> Self {
        self.cascade = Some(cascade);
        self
    }

    /// Blocks until the background queue drains (tests / page settles).
    pub fn flush(&self) {
        self.engine.flush();
    }

    /// Counter access.
    pub fn stats(&self) -> &HookStats {
        &self.stats
    }

    /// The shared verdict cache.
    pub fn memo(&self) -> &MemoizedClassifier {
        self.engine.memo()
    }

    /// The underlying micro-batching engine.
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }
}

impl ImageInterceptor for AsyncPercivalHook {
    fn inspect(&self, bitmap: &mut Bitmap, meta: &ImageMeta<'_>) -> InterceptAction {
        // 1-in-N flight-recorder sampling: spans are buffered until the
        // request's trace id is known (the content hash for submissions, a
        // synthetic id for early-resolved requests).
        let trace_start = (telem::enabled() && telem::sample_request()).then(telem::now_ns);
        let mut pending: Vec<(StageKind, u64, u64)> = Vec::new();

        // Tier 0/1: the cascade front-end settles covered URLs and
        // clear-cut structure without hashing, caching or queueing.
        if let Some(cascade) = &self.cascade {
            let decision = if let Some(start) = trace_start {
                let (d, t0_ns, t1_ns) =
                    cascade.decide_timed(meta.url, meta.source_url, meta.structural.as_ref());
                let mut cursor = start;
                if t0_ns > 0 {
                    pending.push((StageKind::CascadeT0, cursor, t0_ns));
                    cursor += t0_ns;
                }
                if t1_ns > 0 {
                    pending.push((StageKind::CascadeT1, cursor, t1_ns));
                }
                d
            } else {
                cascade.decide(meta.url, meta.source_url, meta.structural.as_ref())
            };
            match decision {
                CascadeDecision::Block(_) => {
                    self.stats.blocked.fetch_add(1, Ordering::Relaxed);
                    if let Some(start) = trace_start {
                        emit_early_trace(start, &pending);
                    }
                    return InterceptAction::Block;
                }
                CascadeDecision::Keep(_) => {
                    if let Some(start) = trace_start {
                        emit_early_trace(start, &pending);
                    }
                    return InterceptAction::Keep;
                }
                CascadeDecision::Classify => {}
            }
        }
        // Admission feedback before submission: a memoized verdict blocks
        // (or keeps) instantly without entering the engine at all. The
        // content hash is computed once here and shared by the hint and
        // the keyed submission.
        let hash_start = trace_start.map(|_| telem::now_ns());
        let img = bitmap.hashed();
        if let Some(s) = hash_start {
            pending.push((StageKind::Hash, s, telem::now_ns().saturating_sub(s)));
        }
        let hint_start = trace_start.map(|_| telem::now_ns());
        let hint = self.engine.admission_hint_with_key(&img);
        if let Some(s) = hint_start {
            pending.push((
                StageKind::AdmissionHint,
                s,
                telem::now_ns().saturating_sub(s),
            ));
        }
        if let AdmissionHint::Cached(pred) = hint {
            self.memo().record_hit();
            self.stats.classified.fetch_add(1, Ordering::Relaxed);
            if let Some(start) = trace_start {
                emit_early_trace(start, &pending);
            }
            if pred.is_ad {
                self.stats.blocked.fetch_add(1, Ordering::Relaxed);
                return InterceptAction::Block;
            }
            return InterceptAction::Keep;
        }
        // Miss: render now, classify in the background for next time. The
        // ticket is dropped deliberately — the verdict lands in the memo
        // cache and blocks the creative's next sighting.
        if let Some(start) = trace_start {
            // The content hash is the trace id from here on; the engine's
            // batcher closes the trace when the verdict publishes.
            let key = img.key();
            telem::register(key, start);
            for (kind, s, d) in pending {
                telem::emit(key, kind, s, d);
            }
            let submit_start = telem::now_ns();
            let ticket = self.engine.submit_with_key(&img);
            telem::emit(
                key,
                StageKind::Submit,
                submit_start,
                telem::now_ns().saturating_sub(submit_start),
            );
            if ticket.poll().is_some() {
                // Resolved before queueing (submit-time cache race): the
                // publish path never ran for this key, so close it here.
                if let Some(s) = telem::complete(key) {
                    let end = telem::now_ns();
                    telem::emit(key, StageKind::EndToEnd, s, end.saturating_sub(s));
                }
            }
        } else {
            drop(self.engine.submit_with_key(&img));
        }
        InterceptAction::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::percival_net_slim;
    use crate::train::{train, TrainConfig};
    use percival_nn::init::kaiming_init;
    use percival_nn::StepLr;
    use percival_util::Pcg32;
    use percival_webgen::profile::{build_balanced_dataset, DatasetProfile};
    use percival_webgen::Script;

    /// A classifier actually trained to separate the synthetic classes.
    fn trained_classifier() -> Classifier {
        let ds = build_balanced_dataset(11, DatasetProfile::Alexa, Script::Latin, 32, 40);
        let bitmaps: Vec<Bitmap> = ds.iter().map(|s| s.bitmap.clone()).collect();
        let labels: Vec<bool> = ds.iter().map(|s| s.is_ad).collect();
        let cfg = TrainConfig {
            input_size: 32,
            width_divisor: 4,
            epochs: 8,
            batch_size: 16,
            schedule: StepLr {
                base: 0.02,
                gamma: 0.1,
                every: 30,
            },
            ..Default::default()
        };
        train(&bitmaps, &labels, &cfg).classifier
    }

    fn untrained() -> Classifier {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(5));
        Classifier::new(model, 32)
    }

    fn meta(url: &str) -> ImageMeta<'_> {
        ImageMeta::basic(url, 32, 32, 0)
    }

    #[test]
    fn sync_hook_blocks_ads_and_keeps_content() {
        let hook = PercivalHook::new(trained_classifier());
        let ds = build_balanced_dataset(77, DatasetProfile::Alexa, Script::Latin, 32, 15);
        let mut correct = 0usize;
        for s in &ds {
            let mut bmp = s.bitmap.clone();
            let action = hook.inspect(&mut bmp, &meta("http://x/img"));
            let blocked = action == InterceptAction::Block;
            if blocked == s.is_ad {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.len() as f64;
        assert!(acc > 0.75, "hook should track the labels: {acc}");
        assert!(hook.stats().classified() >= ds.len() as u64 / 2);
    }

    #[test]
    fn min_edge_skips_tracking_pixels() {
        let hook = PercivalHook::new(untrained()).with_min_edge(4);
        let mut px = Bitmap::new(1, 1, [0, 0, 0, 0]);
        assert_eq!(
            hook.inspect(&mut px, &meta("http://t/px.gif")),
            InterceptAction::Keep
        );
        assert_eq!(hook.stats().skipped_small(), 1);
        assert_eq!(hook.stats().classified(), 0);
    }

    #[test]
    fn replace_policy_paints_instead_of_blocking() {
        let mut classifier = untrained();
        classifier.set_threshold(1e-3); // everything is an ad
        let hook = PercivalHook::new(classifier)
            .with_policy(BlockPolicy::Replace(BlockPolicy::spirit_animal(16)));
        let mut bmp = Bitmap::new(20, 20, [200, 0, 0, 255]);
        let action = hook.inspect(&mut bmp, &meta("http://x/ad"));
        assert_eq!(action, InterceptAction::Keep, "replacement renders");
        assert!(!bmp.is_blank());
        assert_eq!(hook.stats().blocked(), 1);
        // The buffer now holds the placeholder, not the ad.
        assert_ne!(bmp.get(1, 1), [200, 0, 0, 255]);
    }

    #[test]
    fn async_hook_lets_first_sighting_through_then_blocks() {
        let mut classifier = untrained();
        classifier.set_threshold(1e-3); // everything is an ad
        let hook = AsyncPercivalHook::new(classifier);
        let mut bmp = Bitmap::new(16, 16, [50, 60, 70, 255]);

        // First sighting: cache miss, rendered.
        assert_eq!(
            hook.inspect(&mut bmp.clone(), &meta("http://x/a")),
            InterceptAction::Keep
        );
        hook.flush();
        // Second sighting: memoized verdict blocks.
        assert_eq!(
            hook.inspect(&mut bmp, &meta("http://x/a")),
            InterceptAction::Block
        );
        assert_eq!(hook.stats().blocked(), 1);
    }

    #[test]
    fn async_hook_cascade_resolves_without_the_engine() {
        use crate::cascade::{Cascade, CascadeConfig};
        use percival_filterlist::easylist::synthetic_engine;

        let hook = AsyncPercivalHook::new(untrained()).with_cascade(Arc::new(Cascade::new(
            synthetic_engine(),
            CascadeConfig::default(),
        )));
        let mut bmp = Bitmap::new(16, 16, [40, 40, 40, 255]);

        // A listed creative blocks at tier 0 — first sighting, no memo.
        let mut ad = meta("http://adnet-alpha.web/serve/banner_728x90_1.png");
        ad.source_url = "http://news0.web/";
        assert_eq!(hook.inspect(&mut bmp.clone(), &ad), InterceptAction::Block);

        // Clear-cut content keeps at tier 1 without queueing either.
        let mut content = meta("http://news0.web/static/img/photo_1.png");
        content.source_url = "http://news0.web/";
        content.structural = Some(percival_renderer::StructuralFeatures::from_parts(
            640, 480, 0, false,
        ));
        assert_eq!(hook.inspect(&mut bmp, &content), InterceptAction::Keep);

        hook.flush();
        assert_eq!(
            hook.engine().stats().submitted(),
            0,
            "tier 0/1 decisions must never reach the engine"
        );
        let cascade = hook.cascade.as_ref().unwrap();
        assert_eq!(cascade.counters().tier0_blocked(), 1);
        assert_eq!(cascade.counters().tier1_kept(), 1);
        assert_eq!(cascade.counters().cnn_residual(), 0);
    }

    #[test]
    fn async_hook_shuts_down_cleanly() {
        let hook = AsyncPercivalHook::new(untrained());
        let mut bmp = Bitmap::new(8, 8, [1, 2, 3, 255]);
        hook.inspect(&mut bmp, &meta("http://x/b"));
        drop(hook); // must not hang or panic
    }

    #[test]
    fn sync_hook_memoizes_repeat_creatives() {
        let hook = PercivalHook::new(untrained());
        let mut bmp = Bitmap::new(16, 16, [9, 8, 7, 255]);
        hook.inspect(&mut bmp.clone(), &meta("http://a/x"));
        hook.inspect(&mut bmp, &meta("http://b/y"));
        let (hits, misses) = hook.memo().stats();
        assert_eq!((hits, misses), (1, 1), "same pixels, one CNN pass");
    }
}
