//! The ad classifier: preprocessing + CNN forward pass + verdict.
//!
//! "PERCIVAL reads the image, scales it to 224x224x4 (default input size
//! expected by SqueezeNet), creates a tensor, and passes it through the
//! CNN" (Section 3.3). The input edge is configurable here because the
//! experiments run at several scales; 224 remains the paper default.

use crate::arch::{accepts_input, INPUT_CHANNELS, NUM_CLASSES};
use percival_imgcodec::Bitmap;
use percival_nn::serialize::{self, ModelIoError};
use percival_nn::Sequential;
use percival_tensor::activation::softmax;
use percival_tensor::resize::resize_bilinear;
use percival_tensor::workspace::with_thread_workspace;
use percival_tensor::{Shape, Tensor, Workspace};
use std::time::{Duration, Instant};

/// One classification verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Probability the image is an ad.
    pub p_ad: f32,
    /// `p_ad >= threshold`.
    pub is_ad: bool,
    /// Forward-pass wall time (preprocessing included).
    pub elapsed: Duration,
}

/// The PERCIVAL classifier: a trained network plus its input geometry and
/// decision threshold.
#[derive(Debug, Clone)]
pub struct Classifier {
    model: Sequential,
    input_size: usize,
    threshold: f32,
}

impl Classifier {
    /// Wraps a trained model.
    ///
    /// # Panics
    ///
    /// Panics if the model cannot consume `input_size` inputs or does not
    /// produce two logits.
    pub fn new(model: Sequential, input_size: usize) -> Self {
        assert!(
            accepts_input(&model, input_size),
            "model does not accept {input_size}x{input_size} inputs"
        );
        let out = model.output_shape(Shape::new(1, INPUT_CHANNELS, input_size, input_size));
        assert_eq!(out.c, NUM_CLASSES, "classifier needs {NUM_CLASSES} logits");
        Classifier {
            model,
            input_size,
            threshold: 0.5,
        }
    }

    /// The wrapped network.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// The input edge length.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Decision threshold on `P(ad)` (default 0.5).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Adjusts the decision threshold (clamped to `(0, 1)`).
    pub fn set_threshold(&mut self, t: f32) {
        self.threshold = t.clamp(1e-3, 1.0 - 1e-3);
    }

    /// Converts an RGBA bitmap into a normalized `1 x 4 x S x S` tensor
    /// (channels centred to `[-1, 1]`, the usual CNN input scaling).
    pub fn preprocess(bitmap: &Bitmap, input_size: usize) -> Tensor {
        let (w, h) = (bitmap.width(), bitmap.height());
        let mut t = Tensor::zeros(Shape::new(1, INPUT_CHANNELS, h, w));
        {
            let data = t.as_mut_slice();
            let plane = w * h;
            const SCALE: f32 = 2.0 / 255.0;
            for (i, px) in bitmap.data().chunks_exact(4).enumerate() {
                data[i] = f32::from(px[0]) * SCALE - 1.0;
                data[plane + i] = f32::from(px[1]) * SCALE - 1.0;
                data[2 * plane + i] = f32::from(px[2]) * SCALE - 1.0;
                data[3 * plane + i] = f32::from(px[3]) * SCALE - 1.0;
            }
        }
        if (h, w) == (input_size, input_size) {
            t
        } else {
            resize_bilinear(&t, input_size, input_size)
        }
    }

    /// Classifies one bitmap.
    pub fn classify(&self, bitmap: &Bitmap) -> Prediction {
        let start = Instant::now();
        let input = Self::preprocess(bitmap, self.input_size);
        let logits = self.model.forward(&input);
        let probs = softmax(&logits);
        let p_ad = probs.at(0, 1, 0, 0);
        Prediction {
            p_ad,
            is_ad: p_ad >= self.threshold,
            elapsed: start.elapsed(),
        }
    }

    /// Classifies a preprocessed batch (`N x 4 x S x S`); returns `P(ad)`
    /// per sample. Used by the training/evaluation loops and the
    /// [`crate::engine::InferenceEngine`] micro-batcher.
    pub fn classify_tensor(&self, batch: &Tensor) -> Vec<f32> {
        with_thread_workspace(|ws| self.classify_tensor_with(batch, ws))
    }

    /// [`Classifier::classify_tensor`] with explicit scratch, so repeated
    /// batch classifications reuse activations and GEMM panels.
    pub fn classify_tensor_with(&self, batch: &Tensor, ws: &mut Workspace) -> Vec<f32> {
        let logits = self.model.forward_with(batch, ws);
        let probs = softmax(&logits);
        (0..batch.shape().n).map(|n| probs.at(n, 1, 0, 0)).collect()
    }

    /// Serializes the model weights (the paper's model-size artifact).
    pub fn save_bytes(&self) -> Vec<u8> {
        serialize::save(&self.model)
    }

    /// Restores weights into a classifier with the same architecture.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelIoError`] on malformed or mismatched buffers.
    pub fn load_bytes(&mut self, bytes: &[u8]) -> Result<(), ModelIoError> {
        serialize::load(&mut self.model, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::percival_net_slim;
    use percival_nn::init::kaiming_init;
    use percival_util::Pcg32;

    fn tiny_classifier(seed: u64) -> Classifier {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(seed));
        Classifier::new(model, 32)
    }

    #[test]
    fn preprocess_normalizes_and_planarizes() {
        let mut bmp = Bitmap::new(2, 2, [0, 0, 0, 255]);
        bmp.set(0, 0, [255, 128, 0, 255]);
        let t = Classifier::preprocess(&bmp, 2);
        assert_eq!(t.shape(), Shape::new(1, 4, 2, 2));
        assert!((t.at(0, 0, 0, 0) - 1.0).abs() < 1e-6); // R = 255 -> 1
        assert!(t.at(0, 1, 0, 0).abs() < 0.01); // G = 128 -> ~0
        assert!((t.at(0, 2, 0, 0) + 1.0).abs() < 1e-6); // B = 0 -> -1
        assert!((t.at(0, 3, 1, 1) - 1.0).abs() < 1e-6); // A = 255 -> 1
    }

    #[test]
    fn preprocess_resizes_any_geometry() {
        let bmp = Bitmap::new(13, 7, [100, 100, 100, 255]);
        let t = Classifier::preprocess(&bmp, 32);
        assert_eq!(t.shape(), Shape::new(1, 4, 32, 32));
    }

    #[test]
    fn classify_returns_probability_and_timing() {
        let c = tiny_classifier(1);
        let p = c.classify(&Bitmap::new(20, 20, [200, 30, 30, 255]));
        assert!((0.0..=1.0).contains(&p.p_ad));
        assert!(p.elapsed.as_nanos() > 0);
        assert_eq!(p.is_ad, p.p_ad >= 0.5);
    }

    #[test]
    fn threshold_changes_decisions() {
        let mut c = tiny_classifier(2);
        let bmp = Bitmap::new(16, 16, [10, 200, 40, 255]);
        let p = c.classify(&bmp);
        c.set_threshold(p.p_ad + 0.01);
        assert!(!c.classify(&bmp).is_ad);
        c.set_threshold((p.p_ad - 0.01).max(1e-3));
        assert!(c.classify(&bmp).is_ad);
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let a = tiny_classifier(3);
        let mut b = tiny_classifier(4);
        let bmp = Bitmap::new(24, 24, [120, 80, 60, 255]);
        assert_ne!(a.classify(&bmp).p_ad, b.classify(&bmp).p_ad);
        b.load_bytes(&a.save_bytes()).unwrap();
        assert_eq!(a.classify(&bmp).p_ad, b.classify(&bmp).p_ad);
    }

    #[test]
    fn batch_and_single_predictions_agree() {
        let c = tiny_classifier(5);
        // A batch big enough to exercise the multi-sample band splitting in
        // the batched forward path, with varied content per sample.
        let bitmaps: Vec<Bitmap> = (0..8)
            .map(|i| {
                let mut rng = Pcg32::seed_from_u64(40 + i);
                let mut b = Bitmap::new(32, 32, [0, 0, 0, 255]);
                for y in 0..32 {
                    for x in 0..32 {
                        b.set(x, y, [rng.next_below(256) as u8, (8 * i) as u8, 30, 255]);
                    }
                }
                b
            })
            .collect();
        let mut batch = Tensor::zeros(Shape::new(bitmaps.len(), 4, 32, 32));
        for (i, bmp) in bitmaps.iter().enumerate() {
            batch.copy_sample_from(i, &Classifier::preprocess(bmp, 32), 0);
        }
        let ps = c.classify_tensor(&batch);
        for (i, bmp) in bitmaps.iter().enumerate() {
            let single = c.classify(bmp).p_ad;
            assert!(
                (ps[i] - single).abs() < 1e-5,
                "sample {i}: batched {} vs single {single}",
                ps[i]
            );
        }
    }

    #[test]
    fn classify_tensor_with_reuses_its_workspace() {
        let c = tiny_classifier(6);
        let mut rng = Pcg32::seed_from_u64(50);
        let shape = Shape::new(4, 4, 32, 32);
        let batch = Tensor::from_vec(
            shape,
            (0..shape.count())
                .map(|_| rng.range_f32(-1.0, 1.0))
                .collect(),
        );
        let mut ws = Workspace::new();
        let first = c.classify_tensor_with(&batch, &mut ws);
        let warm_allocs = ws.stats().allocations;
        for _ in 0..3 {
            let again = c.classify_tensor_with(&batch, &mut ws);
            assert_eq!(first, again, "repeated forwards must be bit-identical");
        }
        assert_eq!(
            ws.stats().allocations,
            warm_allocs,
            "warm batch classification must not allocate"
        );
    }
}
