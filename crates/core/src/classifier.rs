//! The ad classifier: preprocessing + CNN forward pass + verdict.
//!
//! "PERCIVAL reads the image, scales it to 224x224x4 (default input size
//! expected by SqueezeNet), creates a tensor, and passes it through the
//! CNN" (Section 3.3). The input edge is configurable here because the
//! experiments run at several scales; 224 remains the paper default.

use crate::arch::{accepts_input, INPUT_CHANNELS, NUM_CLASSES};
use percival_imgcodec::Bitmap;
use percival_nn::serialize::{self, ModelIoError};
use percival_nn::{ExecPlan, PlanInput, PlanObserver, QuantizedSequential, Sequential};
use percival_tensor::activation::softmax;
use percival_tensor::ingest::{self, ResizedU8};
use percival_tensor::resize::resize_bilinear;
use percival_tensor::threadpool::{ScopedTask, ThreadPool};
use percival_tensor::workspace::with_thread_workspace;
use percival_tensor::{Shape, Tensor, Workspace};
use std::time::{Duration, Instant};

/// Numeric precision the forward pass executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision f32 (kernel selected by `PERCIVAL_GEMM`).
    #[default]
    F32,
    /// True int8 execution: weights stay quantized through every
    /// convolution (`i8 x i8 -> i32` GEMM with per-tensor requantization);
    /// activations and logits remain f32.
    Int8,
}

/// How int8 weight scales are derived when quantizing the model.
///
/// Orthogonal to [`Precision`]: the scheme only matters once the
/// classifier executes in [`Precision::Int8`], but it can be configured up
/// front (e.g. from an engine config) and survives precision switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantScheme {
    /// One symmetric scale per weight tensor (the paper's scheme; fastest
    /// requantization, slightly coarser).
    #[default]
    PerTensor,
    /// One symmetric scale per output channel (filter row) — tighter
    /// quantization grids for layers whose filters differ widely in
    /// magnitude, at the cost of a per-row scale lookup in the epilogue.
    PerChannel,
}

/// One classification verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Probability the image is an ad.
    pub p_ad: f32,
    /// `p_ad >= threshold`.
    pub is_ad: bool,
    /// CNN cost attributed to this verdict. For a direct
    /// [`Classifier::classify`] call this is the call's wall time
    /// (preprocessing included). For a verdict published by a micro-batcher
    /// it is the batch's wall time divided by the batch size — an
    /// *amortized share*, chosen so summing `elapsed` over verdicts
    /// approximates total CNN time instead of multiply-counting batches —
    /// and `Duration::ZERO` for memo-cache hits. It is **not** the
    /// request's latency: true per-entry queue wait and per-batch service
    /// time live in the flight counters
    /// ([`crate::flight::FlightSnapshot::queue_wait_ns`] /
    /// [`crate::flight::FlightSnapshot::service_ns`]), and the flight
    /// recorder's `QueueWait` / `EndToEnd` spans carry them per request.
    pub elapsed: Duration,
}

impl Prediction {
    /// The one place a probability becomes a verdict: every layer (engine,
    /// serve shards, hint paths) shapes predictions through this, so the
    /// decision rule `is_ad = p_ad >= threshold` cannot drift between them.
    pub fn from_probability(p_ad: f32, threshold: f32, elapsed: Duration) -> Self {
        Prediction {
            p_ad,
            is_ad: p_ad >= threshold,
            elapsed,
        }
    }
}

/// The PERCIVAL classifier: a trained network plus its input geometry,
/// decision threshold and execution precision.
#[derive(Debug, Clone)]
pub struct Classifier {
    model: Sequential,
    /// Int8 execution model, present iff precision is [`Precision::Int8`].
    quantized: Option<QuantizedSequential>,
    /// The compiled fused execution plan, built from the model at
    /// construction and shared by both precision tiers. Its op sequence is
    /// structure-only, but the plan also carries the prepacked weight
    /// panels ([`ExecPlan::prepacked`]) — f32 panels from compilation,
    /// int8 panels attached whenever the quantized model is (re)built — so
    /// it is bound to the current weights: weight reloads recompile it and
    /// precision switches re-attach the int8 arena.
    plan: ExecPlan,
    quant_scheme: QuantScheme,
    input_size: usize,
    threshold: f32,
}

impl Classifier {
    /// Wraps a trained model (f32 execution), compiling and caching its
    /// fused execution plan.
    ///
    /// # Panics
    ///
    /// Panics if the model cannot consume `input_size` inputs or does not
    /// produce two logits.
    pub fn new(model: Sequential, input_size: usize) -> Self {
        assert!(
            accepts_input(&model, input_size),
            "model does not accept {input_size}x{input_size} inputs"
        );
        let out = model.output_shape(Shape::new(1, INPUT_CHANNELS, input_size, input_size));
        assert_eq!(out.c, NUM_CLASSES, "classifier needs {NUM_CLASSES} logits");
        let plan = ExecPlan::compile(&model);
        Classifier {
            model,
            quantized: None,
            plan,
            quant_scheme: QuantScheme::default(),
            input_size,
            threshold: 0.5,
        }
    }

    /// The cached fused execution plan this classifier runs.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Switches the execution precision, (re)building the int8 execution
    /// model when [`Precision::Int8`] is requested. The f32 weights are
    /// always retained — they are the source of truth for serialization,
    /// training and re-quantization.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.set_precision(precision);
        self
    }

    /// In-place form of [`Classifier::with_precision`].
    pub fn set_precision(&mut self, precision: Precision) {
        self.quantized = match precision {
            Precision::F32 => None,
            Precision::Int8 => {
                let q = match self.quant_scheme {
                    QuantScheme::PerTensor => QuantizedSequential::from_model(&self.model),
                    QuantScheme::PerChannel => {
                        QuantizedSequential::from_model_per_channel(&self.model)
                    }
                };
                // Keep the plan's prepacked int8 panels in lockstep with
                // the execution model they were packed from.
                self.plan.attach_quantized(&q);
                Some(q)
            }
        };
    }

    /// Switches the weight-quantization scheme; when int8 execution is
    /// active the execution model (and the plan's prepacked int8 panels)
    /// are rebuilt immediately under the new scheme.
    pub fn with_quant_scheme(mut self, scheme: QuantScheme) -> Self {
        self.set_quant_scheme(scheme);
        self
    }

    /// In-place form of [`Classifier::with_quant_scheme`].
    pub fn set_quant_scheme(&mut self, scheme: QuantScheme) {
        if self.quant_scheme == scheme {
            return;
        }
        self.quant_scheme = scheme;
        if self.quantized.is_some() {
            self.set_precision(Precision::Int8);
        }
    }

    /// The weight-quantization scheme int8 execution (re)builds with.
    pub fn quant_scheme(&self) -> QuantScheme {
        self.quant_scheme
    }

    /// The precision the forward pass currently executes in.
    pub fn precision(&self) -> Precision {
        if self.quantized.is_some() {
            Precision::Int8
        } else {
            Precision::F32
        }
    }

    /// The int8 execution model, when precision is [`Precision::Int8`].
    pub fn quantized(&self) -> Option<&QuantizedSequential> {
        self.quantized.as_ref()
    }

    /// The wrapped network.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// The input edge length.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Decision threshold on `P(ad)` (default 0.5).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Adjusts the decision threshold (clamped to `(0, 1)`).
    pub fn set_threshold(&mut self, t: f32) {
        self.threshold = t.clamp(1e-3, 1.0 - 1e-3);
    }

    /// Converts an RGBA bitmap into a normalized `1 x 4 x S x S` tensor
    /// (channels centred to `[-1, 1]`, the usual CNN input scaling).
    ///
    /// This is the fused ingest path: the creative is resized in the u8
    /// domain first ([`percival_tensor::ingest::resize_rgba`]) and only
    /// the `S x S` result is normalized into f32, so float work is
    /// `O(S²)` instead of `O(W·H)` and no full-resolution f32 temporary
    /// exists. Identity geometries are bitwise-identical to
    /// [`Classifier::preprocess_reference`]; resampled ones agree to
    /// within the fixed-point interpolation tolerance (~2 byte steps).
    pub fn preprocess(bitmap: &Bitmap, input_size: usize) -> Tensor {
        let mut t = Tensor::zeros(Shape::new(1, INPUT_CHANNELS, input_size, input_size));
        with_thread_workspace(|ws| {
            Self::preprocess_into(bitmap, input_size, t.as_mut_slice(), ws);
        });
        t
    }

    /// Resizes a creative into the compact u8 intermediate the batchers
    /// queue: `4·S²` bytes instead of the `16·S²`-byte f32 tensor, with
    /// the byte range tracked so the int8 tier can derive its activation
    /// scale without ever normalizing. The buffer rides the workspace's
    /// `u8` free list; recycle it after batch formation.
    pub fn resize_to(bitmap: &Bitmap, input_size: usize, ws: &mut Workspace) -> ResizedU8 {
        ingest::resize_rgba(
            bitmap.data(),
            bitmap.width(),
            bitmap.height(),
            input_size,
            ws,
        )
    }

    /// Fused preprocess writing straight into a caller-provided planar
    /// `4 x S x S` f32 window — typically a batch tensor's sample slice at
    /// formation time, which is what deletes the old preprocess-then-copy
    /// assembly pass. Allocation-free once the workspace is warm.
    pub fn preprocess_into(
        bitmap: &Bitmap,
        input_size: usize,
        dst: &mut [f32],
        ws: &mut Workspace,
    ) {
        let resized = Self::resize_to(bitmap, input_size, ws);
        ingest::normalize_into(resized.data(), input_size, dst);
        ws.recycle_u8(resized.into_data());
    }

    /// The seed pipeline's preprocess — normalize the **full-resolution**
    /// bitmap to f32, then bilinearly resize the planes — kept as the
    /// parity and bench reference for the fused path.
    pub fn preprocess_reference(bitmap: &Bitmap, input_size: usize) -> Tensor {
        let (w, h) = (bitmap.width(), bitmap.height());
        let mut t = Tensor::zeros(Shape::new(1, INPUT_CHANNELS, h, w));
        {
            let data = t.as_mut_slice();
            let plane = w * h;
            const SCALE: f32 = 2.0 / 255.0;
            for (i, px) in bitmap.data().chunks_exact(4).enumerate() {
                data[i] = f32::from(px[0]) * SCALE - 1.0;
                data[plane + i] = f32::from(px[1]) * SCALE - 1.0;
                data[2 * plane + i] = f32::from(px[2]) * SCALE - 1.0;
                data[3 * plane + i] = f32::from(px[3]) * SCALE - 1.0;
            }
        }
        if (h, w) == (input_size, input_size) {
            t
        } else {
            resize_bilinear(&t, input_size, input_size)
        }
    }

    /// Runs the precision-appropriate forward pass over a borrowed batch
    /// buffer and writes `P(ad)` per sample into `out` (length = `shape.n`).
    /// Both tiers execute through the cached plan — one fused forward-pass
    /// implementation each, no per-call recompilation.
    fn forward_probs_into(&self, shape: Shape, data: &[f32], ws: &mut Workspace, out: &mut [f32]) {
        self.forward_probs_into_observed(shape, data, ws, out, None);
    }

    /// [`Classifier::forward_probs_into`] with an optional [`PlanObserver`]
    /// told every fused op's wall time (the flight recorder's PlanOp spans
    /// and [`percival_nn::PlanProfile`] both ride this hook).
    fn forward_probs_into_observed(
        &self,
        shape: Shape,
        data: &[f32],
        ws: &mut Workspace,
        out: &mut [f32],
        obs: Option<&dyn PlanObserver>,
    ) {
        let logits = match (&self.quantized, obs) {
            (Some(q), Some(o)) => self.plan.run_i8_observed(q, shape, data, ws, o),
            (Some(q), None) => self.plan.run_i8(q, shape, data, ws),
            (None, Some(o)) => self.plan.run_f32_observed(&self.model, shape, data, ws, o),
            (None, None) => self.plan.run_f32(&self.model, shape, data, ws),
        };
        let probs = softmax(&logits);
        for (n, slot) in out.iter_mut().enumerate() {
            *slot = probs.at(n, 1, 0, 0);
        }
    }

    /// Classifies one bitmap.
    pub fn classify(&self, bitmap: &Bitmap) -> Prediction {
        let start = Instant::now();
        let input = Self::preprocess(bitmap, self.input_size);
        let mut p_ad = [0.0f32];
        with_thread_workspace(|ws| {
            self.forward_probs_into(input.shape(), input.as_slice(), ws, &mut p_ad);
        });
        let p_ad = p_ad[0];
        Prediction {
            p_ad,
            is_ad: p_ad >= self.threshold,
            elapsed: start.elapsed(),
        }
    }

    /// Classifies a preprocessed batch (`N x 4 x S x S`); returns `P(ad)`
    /// per sample. Used by the training/evaluation loops and the
    /// [`crate::engine::InferenceEngine`] micro-batcher.
    pub fn classify_tensor(&self, batch: &Tensor) -> Vec<f32> {
        with_thread_workspace(|ws| self.classify_tensor_with(batch, ws))
    }

    /// [`Classifier::classify_tensor`] with explicit scratch, so repeated
    /// batch classifications reuse activations and GEMM panels. As with
    /// [`percival_tensor::conv2d_forward_with`], the caller's `ws` serves
    /// the single-threaded paths (`n <= 1`, or a one-thread pool); when the
    /// batch splits across pool threads each band packs into its own
    /// recycled thread-local workspace instead.
    ///
    /// Batches are split at the **model** level: the samples are divided
    /// into one contiguous band per available pool thread and each band
    /// runs the whole network independently on its own workspace. Compared
    /// with the previous per-convolution band split this removes a
    /// fork/join barrier per layer, and on single-core hosts it degrades to
    /// per-sample passes — keeping each pass's activations L2-resident
    /// instead of streaming `N`-sample intermediates through the cache,
    /// which is what made batched per-image cost *worse* than `n=1`
    /// (`batch8_per_image_speedup` 0.925 before this split).
    pub fn classify_tensor_with(&self, batch: &Tensor, ws: &mut Workspace) -> Vec<f32> {
        self.classify_tensor_impl(batch, ws, None)
    }

    /// [`Classifier::classify_tensor_with`] with a [`PlanObserver`] told
    /// every fused op's wall time. When the batch band-splits across pool
    /// threads the observer hears every band's ops interleaved (it is
    /// `Sync`); per-op *totals* stay exact either way.
    pub fn classify_tensor_observed(
        &self,
        batch: &Tensor,
        ws: &mut Workspace,
        obs: &dyn PlanObserver,
    ) -> Vec<f32> {
        self.classify_tensor_impl(batch, ws, Some(obs))
    }

    fn classify_tensor_impl(
        &self,
        batch: &Tensor,
        ws: &mut Workspace,
        obs: Option<&dyn PlanObserver>,
    ) -> Vec<f32> {
        let s = batch.shape();
        let n = s.n;
        let mut probs = vec![0.0f32; n];
        if n <= 1 {
            self.forward_probs_into_observed(s, batch.as_slice(), ws, &mut probs, obs);
            return probs;
        }

        let pool = ThreadPool::global();
        let bands = pool.parallelism().min(n);
        let per_sample = s.c * s.h * s.w;
        if bands <= 1 {
            // Single-threaded: one pass per sample, cache-resident. The
            // sample forwards straight from the batch buffer, so this path
            // does exactly the work of `n` independent n=1 classifications.
            let sample_shape = Shape::new(1, s.c, s.h, s.w);
            for (i, slot) in probs.iter_mut().enumerate() {
                self.forward_probs_into_observed(
                    sample_shape,
                    batch.sample(i),
                    ws,
                    std::slice::from_mut(slot),
                    obs,
                );
            }
            return probs;
        }

        // One whole-network task per band; bands write disjoint chunks of
        // `probs`, and nested conv/GEMM splits degrade to inline execution
        // inside pool workers, so there is exactly one fork/join per batch.
        let band_len = n.div_ceil(bands);
        let tasks: Vec<ScopedTask<'_>> = probs
            .chunks_mut(band_len)
            .enumerate()
            .map(|(band, out_chunk)| {
                let start = band * band_len;
                let rows = out_chunk.len();
                Box::new(move || {
                    with_thread_workspace(|tws| {
                        self.forward_probs_into_observed(
                            Shape::new(rows, s.c, s.h, s.w),
                            &batch.as_slice()[start * per_sample..(start + rows) * per_sample],
                            tws,
                            out_chunk,
                            obs,
                        );
                    });
                }) as ScopedTask<'_>
            })
            .collect();
        pool.scope_run(tasks);
        probs
    }

    /// Classifies a batch the fused ingest path quantized straight from
    /// creative bytes: `data` holds `maxes.len()` planar
    /// `4 x S x S` int8 samples (each quantized under the scale derived
    /// from its byte-domain maximum, see
    /// [`percival_tensor::ingest::quantize_planar_from_u8`]); returns
    /// `P(ad)` per sample. Bitwise-identical to normalizing the same bytes
    /// to f32 and calling [`Classifier::classify_tensor_with`] — the f32
    /// input plane simply never exists. Activation scales stay per-sample,
    /// so verdicts remain batch-invariant.
    ///
    /// # Panics
    ///
    /// Panics if the classifier is not executing in [`Precision::Int8`],
    /// or `data` does not cover the batch.
    pub fn classify_quantized_with(
        &self,
        data: &[i8],
        maxes: &[f32],
        ws: &mut Workspace,
    ) -> Vec<f32> {
        self.classify_quantized_impl(data, maxes, ws, None)
    }

    /// [`Classifier::classify_quantized_with`] with a [`PlanObserver`]
    /// told every fused op's wall time.
    pub fn classify_quantized_observed(
        &self,
        data: &[i8],
        maxes: &[f32],
        ws: &mut Workspace,
        obs: &dyn PlanObserver,
    ) -> Vec<f32> {
        self.classify_quantized_impl(data, maxes, ws, Some(obs))
    }

    fn classify_quantized_impl(
        &self,
        data: &[i8],
        maxes: &[f32],
        ws: &mut Workspace,
        obs: Option<&dyn PlanObserver>,
    ) -> Vec<f32> {
        let q = self
            .quantized
            .as_ref()
            .expect("classify_quantized_with needs Int8 precision");
        let n = maxes.len();
        let s = self.input_size;
        let per_sample = INPUT_CHANNELS * s * s;
        assert!(
            data.len() >= n * per_sample,
            "quantized batch does not cover {n} samples"
        );
        let probs_of = |plan: &ExecPlan,
                        shape: Shape,
                        data: &[i8],
                        maxes: &[f32],
                        ws: &mut Workspace,
                        out: &mut [f32]| {
            let logits = plan.run_i8_input(q, shape, PlanInput::Quant { data, maxes }, ws, obs);
            let p = softmax(&logits);
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = p.at(i, 1, 0, 0);
            }
        };

        let mut probs = vec![0.0f32; n];
        let pool = ThreadPool::global();
        let bands = pool.parallelism().min(n.max(1));
        if n <= 1 || bands <= 1 {
            // Single band: one pass (per-sample pipelining, when the pool
            // helps, happens inside the plan run).
            probs_of(
                &self.plan,
                Shape::new(n, INPUT_CHANNELS, s, s),
                data,
                maxes,
                ws,
                &mut probs,
            );
            return probs;
        }

        // One whole-network task per band over disjoint sample ranges,
        // exactly like the f32 batched path.
        let probs_of = &probs_of;
        let band_len = n.div_ceil(bands);
        let tasks: Vec<ScopedTask<'_>> = probs
            .chunks_mut(band_len)
            .enumerate()
            .map(|(band, out_chunk)| {
                let start = band * band_len;
                let rows = out_chunk.len();
                Box::new(move || {
                    with_thread_workspace(|tws| {
                        probs_of(
                            &self.plan,
                            Shape::new(rows, INPUT_CHANNELS, s, s),
                            &data[start * per_sample..(start + rows) * per_sample],
                            &maxes[start..start + rows],
                            tws,
                            out_chunk,
                        );
                    });
                }) as ScopedTask<'_>
            })
            .collect();
        pool.scope_run(tasks);
        probs
    }

    /// Serializes the model weights (the paper's model-size artifact).
    pub fn save_bytes(&self) -> Vec<u8> {
        serialize::save(&self.model)
    }

    /// Restores weights into a classifier with the same architecture. The
    /// execution plan is recompiled so its prepacked f32 panels follow the
    /// fresh weights, and when the classifier executes in int8 the
    /// execution model (plus the plan's int8 panels) is re-quantized too.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelIoError`] on malformed or mismatched buffers.
    pub fn load_bytes(&mut self, bytes: &[u8]) -> Result<(), ModelIoError> {
        serialize::load(&mut self.model, bytes)?;
        self.plan = ExecPlan::compile(&self.model);
        if self.quantized.is_some() {
            self.set_precision(Precision::Int8);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::percival_net_slim;
    use percival_nn::init::kaiming_init;
    use percival_util::Pcg32;

    fn tiny_classifier(seed: u64) -> Classifier {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(seed));
        Classifier::new(model, 32)
    }

    #[test]
    fn preprocess_normalizes_and_planarizes() {
        let mut bmp = Bitmap::new(2, 2, [0, 0, 0, 255]);
        bmp.set(0, 0, [255, 128, 0, 255]);
        let t = Classifier::preprocess(&bmp, 2);
        assert_eq!(t.shape(), Shape::new(1, 4, 2, 2));
        assert!((t.at(0, 0, 0, 0) - 1.0).abs() < 1e-6); // R = 255 -> 1
        assert!(t.at(0, 1, 0, 0).abs() < 0.01); // G = 128 -> ~0
        assert!((t.at(0, 2, 0, 0) + 1.0).abs() < 1e-6); // B = 0 -> -1
        assert!((t.at(0, 3, 1, 1) - 1.0).abs() < 1e-6); // A = 255 -> 1
    }

    #[test]
    fn preprocess_resizes_any_geometry() {
        let bmp = Bitmap::new(13, 7, [100, 100, 100, 255]);
        let t = Classifier::preprocess(&bmp, 32);
        assert_eq!(t.shape(), Shape::new(1, 4, 32, 32));
    }

    #[test]
    fn classify_returns_probability_and_timing() {
        let c = tiny_classifier(1);
        let p = c.classify(&Bitmap::new(20, 20, [200, 30, 30, 255]));
        assert!((0.0..=1.0).contains(&p.p_ad));
        assert!(p.elapsed.as_nanos() > 0);
        assert_eq!(p.is_ad, p.p_ad >= 0.5);
    }

    #[test]
    fn threshold_changes_decisions() {
        let mut c = tiny_classifier(2);
        let bmp = Bitmap::new(16, 16, [10, 200, 40, 255]);
        let p = c.classify(&bmp);
        c.set_threshold(p.p_ad + 0.01);
        assert!(!c.classify(&bmp).is_ad);
        c.set_threshold((p.p_ad - 0.01).max(1e-3));
        assert!(c.classify(&bmp).is_ad);
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let a = tiny_classifier(3);
        let mut b = tiny_classifier(4);
        let bmp = Bitmap::new(24, 24, [120, 80, 60, 255]);
        assert_ne!(a.classify(&bmp).p_ad, b.classify(&bmp).p_ad);
        b.load_bytes(&a.save_bytes()).unwrap();
        assert_eq!(a.classify(&bmp).p_ad, b.classify(&bmp).p_ad);
    }

    #[test]
    fn batch_and_single_predictions_agree() {
        let c = tiny_classifier(5);
        // A batch big enough to exercise the multi-sample band splitting in
        // the batched forward path, with varied content per sample.
        let bitmaps: Vec<Bitmap> = (0..8)
            .map(|i| {
                let mut rng = Pcg32::seed_from_u64(40 + i);
                let mut b = Bitmap::new(32, 32, [0, 0, 0, 255]);
                for y in 0..32 {
                    for x in 0..32 {
                        b.set(x, y, [rng.next_below(256) as u8, (8 * i) as u8, 30, 255]);
                    }
                }
                b
            })
            .collect();
        let mut batch = Tensor::zeros(Shape::new(bitmaps.len(), 4, 32, 32));
        for (i, bmp) in bitmaps.iter().enumerate() {
            batch.copy_sample_from(i, &Classifier::preprocess(bmp, 32), 0);
        }
        let ps = c.classify_tensor(&batch);
        for (i, bmp) in bitmaps.iter().enumerate() {
            let single = c.classify(bmp).p_ad;
            assert!(
                (ps[i] - single).abs() < 1e-5,
                "sample {i}: batched {} vs single {single}",
                ps[i]
            );
        }
    }

    #[test]
    fn int8_precision_tracks_f32_verdicts() {
        let f32_cls = tiny_classifier(7);
        let int8_cls = f32_cls.clone().with_precision(Precision::Int8);
        assert_eq!(int8_cls.precision(), Precision::Int8);
        assert_eq!(f32_cls.precision(), Precision::F32);
        for seed in 0..8u64 {
            let mut rng = Pcg32::seed_from_u64(60 + seed);
            let mut bmp = Bitmap::new(24, 24, [0, 0, 0, 255]);
            for y in 0..24 {
                for x in 0..24 {
                    bmp.set(x, y, [rng.next_below(256) as u8, 90, 30, 255]);
                }
            }
            let a = f32_cls.classify(&bmp).p_ad;
            let b = int8_cls.classify(&bmp).p_ad;
            assert!((a - b).abs() < 0.1, "seed {seed}: f32 {a} vs int8 {b}");
        }
    }

    #[test]
    fn per_channel_scheme_tracks_f32_verdicts() {
        let f32_cls = tiny_classifier(12);
        let pc = f32_cls
            .clone()
            .with_quant_scheme(QuantScheme::PerChannel)
            .with_precision(Precision::Int8);
        assert_eq!(pc.quant_scheme(), QuantScheme::PerChannel);
        // Per-channel quantization really is in effect: some conv carries
        // more than one weight scale.
        assert!(pc
            .quantized()
            .unwrap()
            .layers
            .iter()
            .any(|l| matches!(l, percival_nn::QLayer::Conv(c) if c.scales.len() > 1)));
        for seed in 0..6u64 {
            let mut rng = Pcg32::seed_from_u64(80 + seed);
            let mut bmp = Bitmap::new(24, 24, [0, 0, 0, 255]);
            for y in 0..24 {
                for x in 0..24 {
                    bmp.set(x, y, [rng.next_below(256) as u8, 60, 120, 255]);
                }
            }
            let a = f32_cls.classify(&bmp).p_ad;
            let b = pc.classify(&bmp).p_ad;
            assert!((a - b).abs() < 0.1, "seed {seed}: f32 {a} vs per-ch {b}");
        }
    }

    #[test]
    fn scheme_switch_requantizes_active_int8_model() {
        let mut cls = tiny_classifier(13).with_precision(Precision::Int8);
        let per_tensor_scales: Vec<usize> = cls
            .quantized()
            .unwrap()
            .layers
            .iter()
            .filter_map(|l| match l {
                percival_nn::QLayer::Conv(c) => Some(c.scales.len()),
                _ => None,
            })
            .collect();
        assert!(per_tensor_scales.iter().all(|&n| n == 1));
        cls.set_quant_scheme(QuantScheme::PerChannel);
        assert_eq!(cls.precision(), Precision::Int8, "precision preserved");
        let per_channel_scales: Vec<usize> = cls
            .quantized()
            .unwrap()
            .layers
            .iter()
            .filter_map(|l| match l {
                percival_nn::QLayer::Conv(c) => Some(c.scales.len()),
                _ => None,
            })
            .collect();
        assert!(
            per_channel_scales.iter().any(|&n| n > 1),
            "switching the scheme must rebuild the execution model"
        );
    }

    #[test]
    fn precision_roundtrips_back_to_f32() {
        let cls = tiny_classifier(8);
        let bmp = Bitmap::new(20, 20, [120, 40, 200, 255]);
        let baseline = cls.classify(&bmp).p_ad;
        let back = cls
            .clone()
            .with_precision(Precision::Int8)
            .with_precision(Precision::F32);
        assert_eq!(back.precision(), Precision::F32);
        assert_eq!(back.classify(&bmp).p_ad, baseline, "f32 weights untouched");
    }

    #[test]
    fn int8_load_bytes_requantizes() {
        let a = tiny_classifier(9);
        let mut b = tiny_classifier(10).with_precision(Precision::Int8);
        let bmp = Bitmap::new(24, 24, [10, 180, 90, 255]);
        b.load_bytes(&a.save_bytes()).unwrap();
        let expect = a
            .clone()
            .with_precision(Precision::Int8)
            .classify(&bmp)
            .p_ad;
        assert_eq!(
            b.classify(&bmp).p_ad,
            expect,
            "int8 execution model must follow loaded weights"
        );
    }

    #[test]
    fn batched_int8_matches_single_int8() {
        let cls = tiny_classifier(11).with_precision(Precision::Int8);
        let mut rng = Pcg32::seed_from_u64(70);
        let shape = Shape::new(5, 4, 32, 32);
        let batch = Tensor::from_vec(
            shape,
            (0..shape.count())
                .map(|_| rng.range_f32(-1.0, 1.0))
                .collect(),
        );
        let batched = cls.classify_tensor(&batch);
        for (i, &p_batched) in batched.iter().enumerate() {
            let mut one = Tensor::zeros(Shape::new(1, 4, 32, 32));
            one.copy_sample_from(0, &batch, i);
            let single = cls.classify_tensor(&one)[0];
            // Activation scales are per sample, so a verdict must not
            // depend on which other images shared the micro-batch.
            assert_eq!(
                p_batched, single,
                "sample {i}: int8 verdicts must be batch-invariant"
            );
        }
    }

    #[test]
    fn classify_tensor_with_reuses_its_workspace() {
        let c = tiny_classifier(6);
        let mut rng = Pcg32::seed_from_u64(50);
        let shape = Shape::new(4, 4, 32, 32);
        let batch = Tensor::from_vec(
            shape,
            (0..shape.count())
                .map(|_| rng.range_f32(-1.0, 1.0))
                .collect(),
        );
        let mut ws = Workspace::new();
        let first = c.classify_tensor_with(&batch, &mut ws);
        let warm_allocs = ws.stats().allocations;
        for _ in 0..3 {
            let again = c.classify_tensor_with(&batch, &mut ws);
            assert_eq!(first, again, "repeated forwards must be bit-identical");
        }
        assert_eq!(
            ws.stats().allocations,
            warm_allocs,
            "warm batch classification must not allocate"
        );
    }
}
