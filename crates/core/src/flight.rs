//! The flight-control core: one audited queue → memo → single-flight →
//! publish protocol, shared by every classification tier.
//!
//! PERCIVAL is probed with repeated and near-duplicate creatives (one ad
//! network serving one creative into many slots, or an adversary replaying
//! perturbed copies), which makes the deduplication/publish machinery the
//! most safety-critical code in the system. Before this module existed the
//! protocol lived twice — in `percival_core::engine` and in
//! `percival_serve`'s shards — and every fix had to be mirrored by hand.
//! [`FlightTable`] is the single implementation both layers instantiate,
//! parameterized over:
//!
//! - a [`QueueDiscipline`] (`Q`): [`Fifo`] for the in-browser engine (no
//!   deadline configuration dragged through the hook path), [`Edf`] for
//!   the serving layer (earliest-deadline-first with per-entry metadata);
//! - the published verdict type (`V`): `Prediction` for the engine,
//!   the serving layer's `Verdict` for shards.
//!
//! ## The protocol invariants (owned here, nowhere else)
//!
//! 1. **Memoize before unpark** ([`FlightTable::publish`]): a verdict is
//!    inserted into the memo cache *before* its single-flight group is
//!    removed, and the group is removed under the state lock — so a
//!    submitter that misses the group is guaranteed to hit the cache.
//! 2. **Coalesce-or-recheck under one lock hold**
//!    ([`FlightTable::submit`]): joining an in-flight group and re-checking
//!    the cache happen under a single state-lock acquisition, so an image
//!    can never be classified twice.
//! 3. **Accounting under the lock**: queue-depth gauges and the caller's
//!    enqueue accounting (`on_queued`) run while the state lock is held, so
//!    a batcher that pops the entry the instant the lock drops observes the
//!    increments and the drain counters cannot underflow.
//! 4. **Tighter deadlines re-prioritize** ([`QueueDiscipline::reprioritize`]):
//!    a coalescing submitter carrying a more urgent priority moves its whole
//!    single-flight group forward in the queue order (a FIFO ignores this).
//!
//! The layers above remain thin policy wrappers: batch *formation* policy
//! (feasibility shedding, tier demotion) is a closure passed to
//! [`FlightTable::form_batch`], admission *overload* policy (shed /
//! degrade / backpressure) is a [`Gate`] closure passed to
//! [`FlightTable::submit`], and work stealing is simply another thread
//! calling `form_batch`/`publish` on a sibling's table.

use crate::memo::MemoizedClassifier;
use percival_tensor::ResizedU8;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One queued single-flight group: the representative preprocessed input
/// plus the discipline's priority metadata.
pub struct FlightEntry<P> {
    /// Content hash of the creative (the single-flight key).
    pub key: u64,
    /// Resized `S x S x 4` interleaved RGBA bytes (resized on the
    /// submitting thread so the batcher never serializes O(batch)
    /// resizes). Normalization/quantization into the batch tensor happens
    /// at formation time, so a pending entry costs `S*S*4` bytes instead
    /// of a full `f32` tensor (~4x less queue memory).
    pub sample: ResizedU8,
    /// Discipline-specific priority metadata (`()` for FIFO).
    pub prio: P,
    /// When the group was pushed onto the queue ([`FlightTable::submit`]
    /// stamps it under the state lock). Batchers read it at formation to
    /// account true queue wait, separately from service time.
    pub enqueued_at: Instant,
}

/// The ordering policy of a [`FlightTable`]'s pending queue.
///
/// Implementations only order entries; the single-flight table, memo cache
/// and publish protocol live in [`FlightTable`] and are identical across
/// disciplines.
pub trait QueueDiscipline: Default + Send {
    /// Per-entry priority metadata carried by submissions.
    type Prio: Clone + Send;

    /// Enqueues one single-flight group.
    fn push(&mut self, entry: FlightEntry<Self::Prio>);

    /// Dequeues the most urgent group, or `None` when empty.
    fn pop(&mut self) -> Option<FlightEntry<Self::Prio>>;

    /// Entries currently queued.
    fn len(&self) -> usize;

    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A coalescing submitter arrived carrying `prio` for an already-queued
    /// group. Disciplines with a notion of urgency move the group forward
    /// when `prio` is strictly tighter; returns true if the order changed.
    /// The default (FIFO) ignores it.
    fn reprioritize(&mut self, _key: u64, _prio: &Self::Prio) -> bool {
        false
    }
}

/// First-in first-out: the engine's discipline. No deadlines, no
/// re-prioritization — submission order is service order.
#[derive(Default)]
pub struct Fifo {
    queue: VecDeque<FlightEntry<()>>,
}

impl QueueDiscipline for Fifo {
    type Prio = ();

    fn push(&mut self, entry: FlightEntry<()>) {
        self.queue.push_back(entry);
    }

    fn pop(&mut self) -> Option<FlightEntry<()>> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Priority metadata of an [`Edf`]-queued entry.
#[derive(Debug, Clone, Copy)]
pub struct EdfPrio {
    /// Absolute soft deadline; earliest pops first.
    pub deadline: Instant,
    /// Admission order; tie-breaks equal deadlines so batch formation is
    /// deterministic (FIFO within a deadline).
    pub seq: u64,
    /// When the entry was admitted (drives latency accounting).
    pub enqueued: Instant,
    /// Run on the degraded (int8) tier.
    pub degraded: bool,
}

/// Earliest-deadline-first: the serving layer's discipline. A coalescing
/// submitter with a strictly tighter deadline re-prioritizes its whole
/// single-flight group.
///
/// Implemented as an *indexed* binary min-heap: a position map (key →
/// heap slot, maintained by every sift) makes [`Edf::reprioritize`] a
/// lookup plus one sift-up — O(log n) — instead of the earlier
/// drain-and-re-heapify, which was O(n) per tightening and priced
/// hot-key coalescing by total queue depth.
#[derive(Default)]
pub struct Edf {
    /// Heap-ordered entries: slot 0 is the earliest (deadline, seq).
    heap: Vec<FlightEntry<EdfPrio>>,
    /// Heap slot of each *queued* group (single-flight guarantees one
    /// queue entry per key). Consulted O(1) under the shard state lock by
    /// coalescing submissions — the dedup hot path under hot-key traffic.
    pos: HashMap<u64, usize>,
}

impl Edf {
    /// Min-heap order: earliest deadline first, FIFO (seq) within a
    /// deadline so batch formation stays deterministic.
    #[inline]
    fn earlier(a: &FlightEntry<EdfPrio>, b: &FlightEntry<EdfPrio>) -> bool {
        (a.prio.deadline, a.prio.seq) < (b.prio.deadline, b.prio.seq)
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos.insert(self.heap[a].key, a);
        self.pos.insert(self.heap[b].key, b);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !Self::earlier(&self.heap[i], &self.heap[parent]) {
                break;
            }
            self.swap_slots(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && Self::earlier(&self.heap[l], &self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && Self::earlier(&self.heap[r], &self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap_slots(i, best);
            i = best;
        }
    }
}

impl QueueDiscipline for Edf {
    type Prio = EdfPrio;

    fn push(&mut self, entry: FlightEntry<EdfPrio>) {
        let slot = self.heap.len();
        self.pos.insert(entry.key, slot);
        self.heap.push(entry);
        self.sift_up(slot);
    }

    fn pop(&mut self) -> Option<FlightEntry<EdfPrio>> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let entry = self.heap.pop().expect("non-empty heap");
        self.pos.remove(&entry.key);
        if !self.heap.is_empty() {
            self.pos.insert(self.heap[0].key, 0);
            self.sift_down(0);
        }
        Some(entry)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reprioritize(&mut self, key: u64, prio: &EdfPrio) -> bool {
        // O(1) exit for the common cases: the group is not queued (already
        // popped / mid-batch) or the new deadline is not strictly tighter.
        let Some(&slot) = self.pos.get(&key) else {
            return false;
        };
        if prio.deadline >= self.heap[slot].prio.deadline {
            return false;
        }
        // Keep the original seq and enqueue stamp: the FIFO tie-break and
        // latency accounting stay anchored to the group's first submitter;
        // only urgency is inherited. Tightening strictly raises priority,
        // so one sift-up restores the heap in O(log n).
        self.heap[slot].prio.deadline = prio.deadline;
        self.sift_up(slot);
        true
    }
}

/// The wait-free counter block owned by every [`FlightTable`] — one
/// telemetry vocabulary for the engine and every serve shard. All counters
/// are monotonic except the `queue_depth` gauge.
#[derive(Debug, Default)]
pub struct FlightCounters {
    submitted: AtomicU64,
    memo_hits: AtomicU64,
    coalesced: AtomicU64,
    reprioritized: AtomicU64,
    shed_admission: AtomicU64,
    shed_late: AtomicU64,
    degraded: AtomicU64,
    batches: AtomicU64,
    batched_images: AtomicU64,
    max_batch: AtomicU64,
    stolen_batches: AtomicU64,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicU64,
    ewma_image_ns: AtomicU64,
    queue_wait_ns: AtomicU64,
    service_ns: AtomicU64,
}

impl FlightCounters {
    /// Total submissions (including cache hits and rejections).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Submissions answered from the verdict cache without queueing.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Submissions merged into an already-queued identical image
    /// (single-flight deduplication).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Coalesced submissions whose tighter deadline moved their
    /// single-flight group forward in the queue order.
    pub fn reprioritized(&self) -> u64 {
        self.reprioritized.load(Ordering::Relaxed)
    }

    /// Submissions rejected at admission by the overload gate.
    pub fn shed_admission(&self) -> u64 {
        self.shed_admission.load(Ordering::Relaxed)
    }

    /// Queued entries rejected at batch formation (infeasible deadline).
    pub fn shed_late(&self) -> u64 {
        self.shed_late.load(Ordering::Relaxed)
    }

    /// Entries demoted to a degraded execution tier under pressure.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Micro-batches executed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Images classified through micro-batches.
    pub fn batched_images(&self) -> u64 {
        self.batched_images.load(Ordering::Relaxed)
    }

    /// Largest micro-batch observed.
    pub fn max_batch(&self) -> u64 {
        self.max_batch.load(Ordering::Relaxed)
    }

    /// Batches executed by a non-home batcher thread (work stealing).
    pub fn stolen_batches(&self) -> u64 {
        self.stolen_batches.load(Ordering::Relaxed)
    }

    /// Entries queued right now (gauge).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Largest queue depth observed.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth.load(Ordering::Relaxed)
    }

    /// Current per-image service-time estimate (EWMA, nanoseconds).
    pub fn ewma_image_ns(&self) -> u64 {
        self.ewma_image_ns.load(Ordering::Relaxed)
    }

    /// Total nanoseconds batched entries spent queued before formation
    /// (true queue wait, summed per entry — not amortized over the batch).
    pub fn queue_wait_ns(&self) -> u64 {
        self.queue_wait_ns.load(Ordering::Relaxed)
    }

    /// Total nanoseconds of batch service wall time (formation through
    /// publish, summed per batch — the CNN pass itself, not the wait).
    pub fn service_ns(&self) -> u64 {
        self.service_ns.load(Ordering::Relaxed)
    }

    /// Accumulates one entry's measured queue wait (push → formation).
    pub fn note_queue_wait(&self, ns: u64) {
        self.queue_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Accumulates one batch's measured service wall time.
    pub fn note_service(&self, ns: u64) {
        self.service_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Folds one measured per-image cost into the service-time estimate
    /// (alpha = 1/4; integer EWMA, monotone under concurrent updates).
    pub fn observe_image_cost(&self, ns: u64) {
        let old = self.ewma_image_ns.load(Ordering::Relaxed);
        let new = if old == 0 { ns } else { old - old / 4 + ns / 4 };
        self.ewma_image_ns.store(new, Ordering::Relaxed);
    }

    /// Records that the last published batch ran on a non-home batcher.
    pub fn note_stolen_batch(&self) {
        self.stolen_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one entry demoted to a degraded tier (wrapper policy).
    pub fn note_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Captures every counter (plus the derived deduplication rate) as one
    /// plain-data value.
    pub fn snapshot(&self) -> FlightSnapshot {
        let submitted = self.submitted();
        let memo_hits = self.memo_hits();
        let coalesced = self.coalesced();
        FlightSnapshot {
            submitted,
            memo_hits,
            coalesced,
            reprioritized: self.reprioritized(),
            shed_admission: self.shed_admission(),
            shed_late: self.shed_late(),
            degraded: self.degraded(),
            batches: self.batches(),
            batched_images: self.batched_images(),
            max_batch: self.max_batch(),
            stolen_batches: self.stolen_batches(),
            queue_depth: self.queue_depth(),
            max_queue_depth: self.max_queue_depth(),
            ewma_image_ns: self.ewma_image_ns(),
            queue_wait_ns: self.queue_wait_ns(),
            service_ns: self.service_ns(),
            dedup_rate: if submitted == 0 {
                0.0
            } else {
                (memo_hits + coalesced) as f64 / submitted as f64
            },
        }
    }
}

/// A plain-data copy of a [`FlightCounters`] block at one instant, so
/// callers (the serving layer, benches, reports) consume one coherent
/// value instead of reading atomics field by field.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlightSnapshot {
    /// Total submissions (including cache hits and rejections).
    pub submitted: u64,
    /// Submissions answered from the verdict cache without queueing.
    pub memo_hits: u64,
    /// Submissions merged into an already-queued identical image.
    pub coalesced: u64,
    /// Coalesced submissions that re-prioritized their group.
    pub reprioritized: u64,
    /// Submissions rejected at admission by the overload gate.
    pub shed_admission: u64,
    /// Queued entries rejected at batch formation.
    pub shed_late: u64,
    /// Entries demoted to a degraded execution tier.
    pub degraded: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Images classified through micro-batches.
    pub batched_images: u64,
    /// Largest micro-batch observed.
    pub max_batch: u64,
    /// Batches executed by a non-home batcher thread.
    pub stolen_batches: u64,
    /// Entries queued at snapshot time.
    pub queue_depth: usize,
    /// Largest queue depth observed.
    pub max_queue_depth: u64,
    /// Per-image service-time estimate (EWMA, nanoseconds).
    pub ewma_image_ns: u64,
    /// Total queue wait accumulated by batched entries (nanoseconds; true
    /// per-entry push → formation wait, not divided by batch size).
    pub queue_wait_ns: u64,
    /// Total batch service wall time (nanoseconds; formation → publish,
    /// per batch — what the CNN pass itself cost).
    pub service_ns: u64,
    /// Fraction of submissions resolved without a CNN pass (memo hits plus
    /// single-flight coalescing over total submissions); 0 when idle.
    pub dedup_rate: f64,
}

impl std::fmt::Display for FlightSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted {}  memo_hits {}  coalesced {}  batches {}  batched_images {}  max_batch {}  dedup {:.1}%",
            self.submitted,
            self.memo_hits,
            self.coalesced,
            self.batches,
            self.batched_images,
            self.max_batch,
            self.dedup_rate * 100.0
        )?;
        if self.shed_admission + self.shed_late + self.degraded + self.reprioritized > 0 {
            write!(
                f,
                "  shed {}+{}  degraded {}  reprioritized {}",
                self.shed_admission, self.shed_late, self.degraded, self.reprioritized
            )?;
        }
        if self.queue_wait_ns + self.service_ns > 0 {
            write!(
                f,
                "  queue_wait {:.1}ms  service {:.1}ms",
                self.queue_wait_ns as f64 / 1e6,
                self.service_ns as f64 / 1e6
            )?;
        }
        Ok(())
    }
}

/// How [`FlightTable::submit`] resolved a submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Resolved immediately from the verdict cache (the cached `p_ad`).
    Cached(f32),
    /// Joined an existing single-flight group.
    Coalesced {
        /// The submitter's tighter priority moved the group forward.
        reprioritized: bool,
    },
    /// Created a new single-flight group, queued behind `depth - 1` others.
    Queued {
        /// Queue depth immediately after the push.
        depth: usize,
    },
    /// Rejected by the admission gate (overload policy).
    Rejected,
}

/// An admission gate's decision, consulted before a new group is queued.
/// The gate runs under the table's state lock with the current queue depth
/// and may mutate the entry's priority (e.g. mark it degraded).
pub enum Gate<V> {
    /// Queue the entry.
    Admit,
    /// Resolve the ticket immediately with this verdict (overload shed).
    Reject(V),
    /// Park the submitter until a batch drains, then re-run the whole
    /// coalesce → cache-recheck → gate sequence. The wrapper's gate is
    /// responsible for turning shutdown into [`Gate::Reject`], otherwise a
    /// parked submitter could sleep forever.
    Wait,
}

/// One popped entry's fate during [`FlightTable::form_batch`].
pub enum Formed<P> {
    /// Classify it in this batch (possibly with a mutated priority, e.g.
    /// demoted to a degraded tier).
    Keep(FlightEntry<P>),
    /// Resolve its group without a CNN pass (infeasible deadline).
    Shed(FlightEntry<P>),
}

/// The outcome of [`FlightTable::form_batch`].
pub struct FormedBatch<P, V> {
    /// Entries to classify, in queue order.
    pub batch: Vec<FlightEntry<P>>,
    /// Single-flight groups removed at formation (already counted as
    /// `shed_late`); the caller resolves them without a CNN pass.
    pub shed: Vec<(u64, Vec<Sender<V>>)>,
}

/// Context handed to the formation policy for each popped entry.
pub struct BatchContext {
    /// Entries expected to share this forward pass (`min(max, depth)` at
    /// formation start) — the horizon for feasibility estimates.
    pub expected: usize,
}

/// A non-mutating admission probe (see [`FlightTable::probe`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlightProbe {
    /// The verdict is memoized; a submission would resolve instantly.
    Cached(f32),
    /// An identical creative is in flight; a submission would coalesce.
    InFlight,
    /// A submission would create a new group behind `depth` queued entries.
    Queueable {
        /// Current queue depth.
        depth: usize,
    },
}

/// What a layer's admission probe tells the renderer hooks: submit, skip,
/// or reuse a memoized verdict. `V` is the layer's verdict type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionHint<V> {
    /// The submission would be admitted (queued or coalesced).
    Admit,
    /// The submission would be rejected by the overload policy; the caller
    /// should skip it (PERCIVAL fails open) instead of queueing a creative
    /// that resolves as shed after the fact.
    WouldShed,
    /// The submission would be admitted but *parked* by a `Block`-policy
    /// backpressure gate for roughly `est_wait` (EWMA service estimate over
    /// the excess queue depth). Latency-sensitive hooks can skip (fail
    /// open) instead of stalling a render thread; throughput callers can
    /// still submit and wait. Advisory, like every hint.
    WouldBlock {
        /// Estimated time until the queue drains enough to admit.
        est_wait: std::time::Duration,
    },
    /// The verdict is already memoized; no submission needed.
    Cached(V),
}

struct FlightState<Q: QueueDiscipline, V> {
    queue: Q,
    /// Single-flight table: content hash → every ticket sender in the
    /// group. A key present here is the authoritative "in flight" signal.
    waiters: HashMap<u64, Vec<Sender<V>>>,
}

/// The shared flight-control core: pending queue, single-flight table,
/// verdict memo and the memoize-before-unpark publish protocol, behind one
/// wait-free counter block.
///
/// Thread-safe; batch formation and publication may be driven by any
/// thread (the serving layer's work stealing runs a sibling's table).
pub struct FlightTable<Q: QueueDiscipline, V> {
    memo: Arc<MemoizedClassifier>,
    state: Mutex<FlightState<Q, V>>,
    /// Wakes a batcher sleeping in [`FlightTable::wait_for_work`].
    work: Condvar,
    /// Wakes submitters parked by a [`Gate::Wait`] admission gate.
    space: Condvar,
    counters: FlightCounters,
}

impl<Q: QueueDiscipline, V: Clone> FlightTable<Q, V> {
    /// Builds a table over a shared memoized-verdict cache.
    pub fn new(memo: Arc<MemoizedClassifier>) -> Self {
        FlightTable {
            memo,
            state: Mutex::new(FlightState {
                queue: Q::default(),
                waiters: HashMap::new(),
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            counters: FlightCounters::default(),
        }
    }

    /// The shared verdict cache.
    pub fn memo(&self) -> &Arc<MemoizedClassifier> {
        &self.memo
    }

    /// The table's counter block.
    pub fn counters(&self) -> &FlightCounters {
        &self.counters
    }

    /// Entries currently queued (the wait-free gauge; stealing scans use
    /// this instead of taking the state lock).
    pub fn depth(&self) -> usize {
        self.counters.queue_depth()
    }

    /// The full audited admission protocol: fast-path cache check,
    /// preprocessing outside the lock, then — under one state-lock hold —
    /// coalesce-or-recheck-cache, the overload gate, and the queue push
    /// with its accounting.
    ///
    /// - `verdict` builds the published value for cache hits;
    /// - `preprocess` produces the resized `S x S x 4` byte sample (runs
    ///   on the submitting thread; wasted only when the submission
    ///   coalesces);
    /// - `gate` is the overload policy, consulted with the current queue
    ///   depth before a new group is queued (see [`Gate`]);
    /// - `on_queued` runs under the state lock right after the push, so
    ///   the caller's pending accounting is visible to any batcher that
    ///   pops the entry the instant the lock drops.
    // The arity is the protocol: each argument is one policy hook of the
    // audited admission sequence, and collapsing them into a struct would
    // only move the same eight names one level down.
    #[allow(clippy::too_many_arguments)]
    pub fn submit<FV, FP, FG, FO>(
        &self,
        key: u64,
        mut prio: Q::Prio,
        tx: Sender<V>,
        verdict: FV,
        preprocess: FP,
        mut gate: FG,
        on_queued: FO,
    ) -> Admission
    where
        FV: Fn(f32) -> V,
        FP: FnOnce() -> ResizedU8,
        FG: FnMut(usize, &mut Q::Prio) -> Gate<V>,
        FO: FnOnce(usize, &Q::Prio),
    {
        let c = &self.counters;
        c.submitted.fetch_add(1, Ordering::Relaxed);
        // Fast path: resolve from the verdict cache without the state lock.
        if let Some(p_ad) = self.memo.cached(key) {
            c.memo_hits.fetch_add(1, Ordering::Relaxed);
            self.memo.record_hit();
            let _ = tx.send(verdict(p_ad));
            return Admission::Cached(p_ad);
        }
        let sample = preprocess();

        let mut state = self.state.lock().expect("flight state");
        loop {
            // Coalesce into an in-flight group; a tighter priority
            // re-prioritizes the whole group (invariant 4).
            if let Some(group) = state.waiters.get_mut(&key) {
                c.coalesced.fetch_add(1, Ordering::Relaxed);
                self.memo.record_miss();
                group.push(tx);
                let reprioritized = state.queue.reprioritize(key, &prio);
                if reprioritized {
                    c.reprioritized.fetch_add(1, Ordering::Relaxed);
                }
                return Admission::Coalesced { reprioritized };
            }
            // Re-check the cache under the lock: `publish` memoizes before
            // removing a group, so a miss observed before the lock may
            // since have resolved — without this, the image would be
            // classified twice (invariant 2).
            if let Some(p_ad) = self.memo.cached(key) {
                c.memo_hits.fetch_add(1, Ordering::Relaxed);
                self.memo.record_hit();
                let _ = tx.send(verdict(p_ad));
                return Admission::Cached(p_ad);
            }
            match gate(state.queue.len(), &mut prio) {
                Gate::Admit => break,
                Gate::Reject(v) => {
                    c.shed_admission.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(v);
                    return Admission::Rejected;
                }
                // The lock is released while parked: the same creative may
                // be enqueued or even classified meanwhile, so the loop
                // re-runs the coalesce/recheck sequence on every wake.
                Gate::Wait => state = self.space.wait(state).expect("flight space wait"),
            }
        }
        self.memo.record_miss();
        state.waiters.insert(key, vec![tx]);
        let queued_prio = prio.clone();
        state.queue.push(FlightEntry {
            key,
            sample,
            prio,
            enqueued_at: Instant::now(),
        });
        let depth = state.queue.len();
        // Gauge + caller accounting under the lock (invariant 3).
        c.queue_depth.store(depth, Ordering::Relaxed);
        c.max_queue_depth.fetch_max(depth as u64, Ordering::Relaxed);
        on_queued(depth, &queued_prio);
        self.work.notify_one();
        Admission::Queued { depth }
    }

    /// Pops up to `max` entries under the state lock; `select` decides each
    /// popped entry's fate ([`Formed::Keep`] / [`Formed::Shed`]). Shed
    /// groups are removed from the single-flight table here (still under
    /// the lock) and returned for the caller to resolve without a CNN pass.
    pub fn form_batch<F>(&self, max: usize, mut select: F) -> FormedBatch<Q::Prio, V>
    where
        F: FnMut(FlightEntry<Q::Prio>, &BatchContext) -> Formed<Q::Prio>,
    {
        let mut state = self.state.lock().expect("flight state");
        let ctx = BatchContext {
            expected: max.min(state.queue.len()),
        };
        let mut batch = Vec::new();
        let mut shed = Vec::new();
        while batch.len() < max {
            let Some(entry) = state.queue.pop() else {
                break;
            };
            match select(entry, &ctx) {
                Formed::Keep(e) => batch.push(e),
                Formed::Shed(e) => {
                    self.counters.shed_late.fetch_add(1, Ordering::Relaxed);
                    if let Some(group) = state.waiters.remove(&e.key) {
                        shed.push((e.key, group));
                    }
                }
            }
        }
        self.counters
            .queue_depth
            .store(state.queue.len(), Ordering::Relaxed);
        FormedBatch { batch, shed }
    }

    /// The memoize-before-unpark publish protocol (invariant 1): every
    /// verdict is inserted into the memo cache first, then the
    /// single-flight groups are removed and resolved under the state lock,
    /// so no submitter can observe a removed group before the cache knows
    /// the answer. `make` builds the published value per group; `resolved`
    /// runs (under the lock) for each group actually removed — the serving
    /// layer records admission-to-verdict latency there.
    pub fn publish<FM, FR>(&self, verdicts: &[(u64, f32)], mut make: FM, mut resolved: FR)
    where
        FM: FnMut(u64, f32) -> V,
        FR: FnMut(u64),
    {
        for &(key, p_ad) in verdicts {
            self.memo.insert(key, p_ad);
        }
        let c = &self.counters;
        c.batches.fetch_add(1, Ordering::Relaxed);
        c.batched_images
            .fetch_add(verdicts.len() as u64, Ordering::Relaxed);
        c.max_batch
            .fetch_max(verdicts.len() as u64, Ordering::Relaxed);
        let mut state = self.state.lock().expect("flight state");
        for &(key, p_ad) in verdicts {
            if let Some(group) = state.waiters.remove(&key) {
                resolved(key);
                let v = make(key, p_ad);
                for tx in group {
                    let _ = tx.send(v.clone());
                }
            }
        }
    }

    /// Parks the calling batcher until the queue is non-empty (returns
    /// true) or the queue is empty and `until` fires (returns false —
    /// shutdown). Work queued at shutdown is therefore always drained
    /// before a batcher exits. The serving layer's batchers sleep on a
    /// service-wide signal instead (work stealing spans tables) and never
    /// call this.
    pub fn wait_for_work(&self, until: impl Fn() -> bool) -> bool {
        let mut state = self.state.lock().expect("flight state");
        loop {
            if !state.queue.is_empty() {
                return true;
            }
            if until() {
                return false;
            }
            state = self.work.wait(state).expect("flight work wait");
        }
    }

    /// Wakes submitters parked by [`Gate::Wait`] (a batch just drained).
    /// Safe to call without the lock: parked submitters re-check depth
    /// under the lock, and the drain that motivated this call happened
    /// under the same lock they contend on.
    pub fn signal_space(&self) {
        self.space.notify_all();
    }

    /// Wakes every parked batcher and gated submitter (shutdown path);
    /// takes the state lock so a thread between its predicate check and
    /// its wait cannot miss the wakeup.
    pub fn wake_all(&self) {
        let _state = self.state.lock().expect("flight state");
        self.work.notify_all();
        self.space.notify_all();
    }

    /// A cheap admission probe for renderer-side feedback: is the verdict
    /// memoized, is an identical creative in flight, or would a submission
    /// queue behind `depth` entries? Touches no counters and never mutates
    /// the queue (the cache lookup refreshes LRU recency, which a probe
    /// that precedes a submission wants anyway).
    pub fn probe(&self, key: u64) -> FlightProbe {
        if let Some(p_ad) = self.memo.cached(key) {
            return FlightProbe::Cached(p_ad);
        }
        let state = self.state.lock().expect("flight state");
        if state.waiters.contains_key(&key) {
            return FlightProbe::InFlight;
        }
        // Same memoize-before-unpark recheck as `submit`: the group may
        // have resolved between the cache miss and the lock.
        if let Some(p_ad) = self.memo.cached(key) {
            return FlightProbe::Cached(p_ad);
        }
        FlightProbe::Queueable {
            depth: state.queue.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::percival_net_slim;
    use crate::classifier::Classifier;
    use percival_nn::init::kaiming_init;
    use percival_util::Pcg32;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn memo() -> Arc<MemoizedClassifier> {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(3));
        Arc::new(MemoizedClassifier::new(Classifier::new(model, 32), 64))
    }

    fn tiny_sample() -> ResizedU8 {
        ResizedU8::from_raw(vec![0; 4], 1)
    }

    fn edf_prio(base: Instant, deadline_ms: u64, seq: u64) -> EdfPrio {
        EdfPrio {
            deadline: base + Duration::from_millis(deadline_ms),
            seq,
            enqueued: base,
            degraded: false,
        }
    }

    /// Admits `key` into an EDF table with the given deadline, asserting it
    /// queues (not coalesces).
    fn admit(table: &FlightTable<Edf, f32>, base: Instant, key: u64, deadline_ms: u64, seq: u64) {
        let (tx, _rx) = channel();
        let outcome = table.submit(
            key,
            edf_prio(base, deadline_ms, seq),
            tx,
            |p| p,
            tiny_sample,
            |_, _| Gate::Admit,
            |_, _| {},
        );
        assert!(matches!(outcome, Admission::Queued { .. }));
    }

    #[test]
    fn fifo_pops_in_submission_order() {
        let mut q = Fifo::default();
        for key in 0..4 {
            q.push(FlightEntry {
                key,
                sample: tiny_sample(),
                prio: (),
                enqueued_at: Instant::now(),
            });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edf_pops_earliest_deadline_first_fifo_within_deadline() {
        let base = Instant::now();
        let mut q = Edf::default();
        for (key, deadline_ms, seq) in [(10, 50, 0), (11, 10, 1), (12, 50, 2), (13, 10, 3)] {
            q.push(FlightEntry {
                key,
                sample: tiny_sample(),
                prio: edf_prio(base, deadline_ms, seq),
                enqueued_at: base,
            });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
        assert_eq!(order, vec![11, 13, 10, 12]);
    }

    #[test]
    fn edf_reprioritize_moves_group_forward_only_when_tighter() {
        let base = Instant::now();
        let mut q = Edf::default();
        q.push(FlightEntry {
            key: 1,
            sample: tiny_sample(),
            prio: edf_prio(base, 100, 0),
            enqueued_at: base,
        });
        q.push(FlightEntry {
            key: 2,
            sample: tiny_sample(),
            prio: edf_prio(base, 50, 1),
            enqueued_at: base,
        });
        // A *looser* deadline must not reorder.
        assert!(!q.reprioritize(1, &edf_prio(base, 200, 2)));
        // A tighter one moves key 1 ahead of key 2.
        assert!(q.reprioritize(1, &edf_prio(base, 10, 3)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn coalescing_submitter_with_tighter_deadline_reprioritizes_group() {
        let table: FlightTable<Edf, f32> = FlightTable::new(memo());
        let base = Instant::now();
        admit(&table, base, 1, 100, 0); // relaxed group
        admit(&table, base, 2, 50, 1); // would otherwise run first
        let (tx, _rx) = channel();
        let outcome = table.submit(
            1,
            edf_prio(base, 10, 2),
            tx,
            |p| p,
            tiny_sample,
            |_, _| Gate::Admit,
            |_, _| {},
        );
        assert_eq!(
            outcome,
            Admission::Coalesced {
                reprioritized: true
            }
        );
        assert_eq!(table.counters().reprioritized(), 1);
        // Batch formation now pops the coalesced group first.
        let formed = table.form_batch(1, |e, _| Formed::Keep(e));
        assert_eq!(formed.batch[0].key, 1);
        let formed = table.form_batch(1, |e, _| Formed::Keep(e));
        assert_eq!(formed.batch[0].key, 2);
    }

    #[test]
    fn publish_memoizes_before_removing_the_group() {
        let table: FlightTable<Fifo, f32> = FlightTable::new(memo());
        let (tx, rx) = channel();
        table.submit(9, (), tx, |p| p, tiny_sample, |_, _| Gate::Admit, |_, _| {});
        let formed = table.form_batch(8, |e, _| Formed::Keep(e));
        assert_eq!(formed.batch.len(), 1);
        table.publish(&[(9, 0.75)], |_, p| p, |_| {});
        assert_eq!(rx.try_recv(), Ok(0.75));
        // The verdict is in the cache, so a later submission fast-paths.
        let (tx2, rx2) = channel();
        let outcome = table.submit(
            9,
            (),
            tx2,
            |p| p,
            tiny_sample,
            |_, _| Gate::Admit,
            |_, _| {},
        );
        assert_eq!(outcome, Admission::Cached(0.75));
        assert_eq!(rx2.try_recv(), Ok(0.75));
        assert_eq!(table.counters().memo_hits(), 1);
    }

    #[test]
    fn gate_reject_resolves_the_ticket_and_counts_shed() {
        let table: FlightTable<Fifo, f32> = FlightTable::new(memo());
        let (tx, rx) = channel();
        let outcome = table.submit(
            5,
            (),
            tx,
            |p| p,
            tiny_sample,
            |_, _| Gate::Reject(-1.0),
            |_, _| {},
        );
        assert_eq!(outcome, Admission::Rejected);
        assert_eq!(rx.try_recv(), Ok(-1.0));
        assert_eq!(table.counters().shed_admission(), 1);
        assert_eq!(table.depth(), 0);
    }

    #[test]
    fn formation_shed_removes_the_group_for_the_caller_to_resolve() {
        let table: FlightTable<Fifo, f32> = FlightTable::new(memo());
        let (tx, rx) = channel();
        table.submit(7, (), tx, |p| p, tiny_sample, |_, _| Gate::Admit, |_, _| {});
        let formed = table.form_batch(8, |e, _| Formed::Shed(e));
        assert!(formed.batch.is_empty());
        assert_eq!(formed.shed.len(), 1);
        assert_eq!(table.counters().shed_late(), 1);
        for (_key, group) in formed.shed {
            for tx in group {
                let _ = tx.send(f32::NAN);
            }
        }
        assert!(rx.try_recv().expect("shed verdict delivered").is_nan());
    }

    /// A naive EDF model: linear scan for the minimum (deadline, seq).
    #[derive(Default)]
    struct NaiveEdf {
        entries: Vec<(Instant, u64, u64)>, // (deadline, seq, key)
    }

    impl NaiveEdf {
        fn push(&mut self, key: u64, deadline: Instant, seq: u64) {
            self.entries.push((deadline, seq, key));
        }

        fn reprioritize(&mut self, key: u64, deadline: Instant) -> bool {
            match self.entries.iter_mut().find(|(_, _, k)| *k == key) {
                Some(e) if deadline < e.0 => {
                    e.0 = deadline;
                    true
                }
                _ => false,
            }
        }

        fn pop(&mut self) -> Option<(u64, Instant)> {
            let i = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, &(d, s, _))| (d, s))
                .map(|(i, _)| i)?;
            let (d, _, k) = self.entries.remove(i);
            Some((k, d))
        }
    }

    mod edf_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The indexed heap agrees with a naive EDF model over long
            /// random push / reprioritize / pop sequences on queues
            /// hundreds deep — every pop order and every reprioritize
            /// verdict, with the position map never desynchronizing.
            #[test]
            fn indexed_heap_matches_naive_model_on_large_queues(
                ops in proptest::collection::vec(
                    (0u64..100_000, 0u64..400, 0u8..6),
                    400..700,
                ),
            ) {
                let base = Instant::now();
                let mut heap = Edf::default();
                let mut model = NaiveEdf::default();
                let mut queued: std::collections::HashSet<u64> =
                    std::collections::HashSet::new();
                let mut seq = 0u64;
                let mut max_depth = 0usize;
                for (deadline_ms, key, kind) in ops {
                    let deadline = base + Duration::from_millis(deadline_ms);
                    match kind {
                        // Weighted toward pushes so the queue grows deep.
                        0..=2 => {
                            if queued.insert(key) {
                                heap.push(FlightEntry {
                                    key,
                                    sample: tiny_sample(),
                                    prio: edf_prio(base, deadline_ms, seq),
                                    enqueued_at: base,
                                });
                                model.push(key, deadline, seq);
                                seq += 1;
                            } else {
                                // Single-flight coalesce: tighter deadlines
                                // re-prioritize the queued group.
                                let changed =
                                    heap.reprioritize(key, &edf_prio(base, deadline_ms, seq));
                                prop_assert_eq!(changed, model.reprioritize(key, deadline));
                            }
                        }
                        3..=4 => {
                            let changed =
                                heap.reprioritize(key, &edf_prio(base, deadline_ms, seq));
                            prop_assert_eq!(changed, model.reprioritize(key, deadline));
                        }
                        _ => {
                            let popped = heap.pop();
                            let expect = model.pop();
                            match (&popped, &expect) {
                                (Some(e), Some((k, d))) => {
                                    prop_assert_eq!(e.key, *k);
                                    prop_assert_eq!(e.prio.deadline, *d);
                                    queued.remove(&e.key);
                                }
                                (None, None) => {}
                                _ => prop_assert!(false, "pop divergence"),
                            }
                        }
                    }
                    max_depth = max_depth.max(heap.len());
                    prop_assert_eq!(heap.len(), model.entries.len());
                }
                prop_assert!(max_depth >= 64, "queue must actually grow large");
                // Drain: the full pop order must match.
                while let Some(e) = heap.pop() {
                    let (k, d) = model.pop().expect("model drained early");
                    prop_assert_eq!(e.key, k);
                    prop_assert_eq!(e.prio.deadline, d);
                }
                prop_assert!(model.pop().is_none());
            }
        }
    }

    #[test]
    fn probe_reports_cached_inflight_and_queueable() {
        let table: FlightTable<Fifo, f32> = FlightTable::new(memo());
        assert_eq!(table.probe(1), FlightProbe::Queueable { depth: 0 });
        let (tx, _rx) = channel();
        table.submit(1, (), tx, |p| p, tiny_sample, |_, _| Gate::Admit, |_, _| {});
        assert_eq!(table.probe(1), FlightProbe::InFlight);
        assert_eq!(table.probe(2), FlightProbe::Queueable { depth: 1 });
        let formed = table.form_batch(8, |e, _| Formed::Keep(e));
        table.publish(
            &formed
                .batch
                .iter()
                .map(|e| (e.key, 0.5))
                .collect::<Vec<_>>(),
            |_, p| p,
            |_| {},
        );
        assert_eq!(table.probe(1), FlightProbe::Cached(0.5));
    }
}
