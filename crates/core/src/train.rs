//! The training pipeline, with the paper's exact recipe.
//!
//! Section 4.3: "we trained PERCIVAL with stochastic gradient descent,
//! momentum (beta = 0.9), learning rate 0.001, and batch size of 24. We
//! also used step learning rate decay and decayed the learning rate by a
//! multiplicative factor 0.1 after every 30 epochs", initializing the
//! early blocks from a pretrained SqueezeNet when available.

use crate::arch::{percival_net_slim, INPUT_CHANNELS};
use crate::classifier::Classifier;
use percival_imgcodec::Bitmap;
use percival_nn::init::{kaiming_init, transfer_prefix};
use percival_nn::{Sequential, SgdMomentum, StepLr};
use percival_tensor::loss::{cross_entropy_backward, cross_entropy_forward};
use percival_tensor::{Shape, Tensor};
use percival_util::{BinaryConfusion, Pcg32};

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Network input edge (paper: 224; experiments default to 64).
    pub input_size: usize,
    /// Channel-width divisor for the slim variant (1 = the paper network).
    pub width_divisor: usize,
    /// Epoch count.
    pub epochs: usize,
    /// Minibatch size (paper: 24).
    pub batch_size: usize,
    /// Momentum coefficient (paper: 0.9).
    pub momentum: f32,
    /// Learning-rate schedule (paper: 0.001, x0.1 every 30 epochs).
    pub schedule: StepLr,
    /// Initialization / shuffling seed.
    pub seed: u64,
    /// Transfer-learning source whose parameter prefix seeds this model
    /// (the "pretrained SqueezeNet" of Section 4.3).
    pub pretrained: Option<Sequential>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            input_size: 64,
            width_divisor: 4,
            epochs: 8,
            batch_size: 24,
            momentum: 0.9,
            schedule: StepLr {
                base: 0.02,
                gamma: 0.1,
                every: 30,
            },
            seed: 0xAD,
            pretrained: None,
        }
    }
}

impl TrainConfig {
    /// The paper's published configuration (full-width network, 224x224
    /// inputs, lr 0.001) — expensive on CPU; used by the fidelity tests
    /// and available to callers with time to spend.
    pub fn paper() -> Self {
        TrainConfig {
            input_size: 224,
            width_divisor: 1,
            epochs: 90,
            batch_size: 24,
            momentum: 0.9,
            schedule: StepLr::paper(),
            seed: 0xAD,
            pretrained: None,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean minibatch loss.
    pub loss: f32,
    /// Training-set accuracy of the epoch's final weights.
    pub accuracy: f64,
    /// Learning rate used.
    pub lr: f32,
}

/// A trained model plus its training history.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The resulting classifier.
    pub classifier: Classifier,
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
}

/// Preprocesses a whole dataset into per-sample tensors.
fn preprocess_all(bitmaps: &[Bitmap], input_size: usize) -> Vec<Tensor> {
    bitmaps
        .iter()
        .map(|b| Classifier::preprocess(b, input_size))
        .collect()
}

fn assemble_batch(samples: &[Tensor], indices: &[usize], input_size: usize) -> Tensor {
    let mut batch = Tensor::zeros(Shape::new(
        indices.len(),
        INPUT_CHANNELS,
        input_size,
        input_size,
    ));
    for (slot, &i) in indices.iter().enumerate() {
        batch.copy_sample_from(slot, &samples[i], 0);
    }
    batch
}

/// Trains a PERCIVAL model on labeled bitmaps.
///
/// # Panics
///
/// Panics if `bitmaps` and `labels` lengths differ or the dataset is empty.
pub fn train(bitmaps: &[Bitmap], labels: &[bool], cfg: &TrainConfig) -> TrainedModel {
    assert_eq!(bitmaps.len(), labels.len(), "one label per bitmap");
    assert!(!bitmaps.is_empty(), "training set must not be empty");

    let mut rng = Pcg32::seed_from_u64(cfg.seed);
    let mut model = percival_net_slim(cfg.width_divisor);
    kaiming_init(&mut model, &mut rng);
    if let Some(src) = &cfg.pretrained {
        transfer_prefix(&mut model, src);
    }

    let samples = preprocess_all(bitmaps, cfg.input_size);
    let class_of = |i: usize| usize::from(labels[i]);

    let mut optimizer = SgdMomentum::new(&model, cfg.momentum);
    // Clip exploding early-training gradients: the network has no batch
    // normalization, and the synthetic datasets are small.
    optimizer.clip_norm = Some(2.0);
    let mut indices: Vec<usize> = (0..samples.len()).collect();
    let mut history = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        let lr = cfg.schedule.at_epoch(epoch);
        rng.shuffle(&mut indices);
        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for chunk in indices.chunks(cfg.batch_size.max(1)) {
            let batch = assemble_batch(&samples, chunk, cfg.input_size);
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| class_of(i)).collect();
            let trace = model.forward_train(&batch);
            let ce = cross_entropy_forward(trace.output(), &batch_labels);
            let d_logits = cross_entropy_backward(&ce, &batch_labels);
            let grads = model.backward(&trace, &d_logits);
            optimizer.step(&mut model, &grads, lr);
            loss_sum += ce.loss;
            batches += 1;
        }
        // Epoch-end training accuracy (cheap forward passes in batches).
        let classifier = Classifier::new(model.clone(), cfg.input_size);
        let cm = evaluate_tensors(&classifier, &samples, labels, cfg.batch_size);
        history.push(EpochStats {
            epoch,
            loss: loss_sum / batches.max(1) as f32,
            accuracy: cm.accuracy(),
            lr,
        });
    }

    TrainedModel {
        classifier: Classifier::new(model, cfg.input_size),
        history,
    }
}

fn evaluate_tensors(
    classifier: &Classifier,
    samples: &[Tensor],
    labels: &[bool],
    batch: usize,
) -> BinaryConfusion {
    let mut cm = BinaryConfusion::default();
    let input_size = classifier.input_size();
    let indices: Vec<usize> = (0..samples.len()).collect();
    for chunk in indices.chunks(batch.max(1)) {
        let b = assemble_batch(samples, chunk, input_size);
        let probs = classifier.classify_tensor(&b);
        for (slot, &i) in chunk.iter().enumerate() {
            cm.record(labels[i], probs[slot] >= classifier.threshold());
        }
    }
    cm
}

/// Evaluates a classifier on labeled bitmaps.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn evaluate(classifier: &Classifier, bitmaps: &[Bitmap], labels: &[bool]) -> BinaryConfusion {
    assert_eq!(bitmaps.len(), labels.len(), "one label per bitmap");
    let samples = preprocess_all(bitmaps, classifier.input_size());
    evaluate_tensors(classifier, &samples, labels, 24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use percival_webgen::profile::{build_balanced_dataset, DatasetProfile};
    use percival_webgen::Script;

    fn dataset(per_class: usize, seed: u64) -> (Vec<Bitmap>, Vec<bool>) {
        let ds = build_balanced_dataset(seed, DatasetProfile::Alexa, Script::Latin, 32, per_class);
        (
            ds.iter().map(|s| s.bitmap.clone()).collect(),
            ds.iter().map(|s| s.is_ad).collect(),
        )
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            input_size: 32,
            width_divisor: 4,
            epochs: 8,
            batch_size: 16,
            schedule: StepLr {
                base: 0.02,
                gamma: 0.1,
                every: 30,
            },
            ..Default::default()
        }
    }

    #[test]
    fn training_learns_the_synthetic_task() {
        let (bitmaps, labels) = dataset(40, 1);
        let trained = train(&bitmaps, &labels, &quick_cfg());
        let final_acc = trained.history.last().unwrap().accuracy;
        assert!(
            final_acc > 0.8,
            "training accuracy should exceed 80%: {final_acc} (history: {:?})",
            trained.history
        );
        // Loss should broadly decrease.
        let first = trained.history.first().unwrap().loss;
        let last = trained.history.last().unwrap().loss;
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn trained_model_generalizes_to_held_out_data() {
        let (train_b, train_l) = dataset(50, 2);
        let (test_b, test_l) = dataset(25, 999);
        let trained = train(&train_b, &train_l, &quick_cfg());
        let cm = evaluate(&trained.classifier, &test_b, &test_l);
        assert!(
            cm.accuracy() > 0.7,
            "held-out accuracy too low: {} ({cm:?})",
            cm.accuracy()
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (bitmaps, labels) = dataset(10, 3);
        let mut cfg = quick_cfg();
        cfg.epochs = 2;
        let a = train(&bitmaps, &labels, &cfg);
        let b = train(&bitmaps, &labels, &cfg);
        let bmp = Bitmap::new(32, 32, [50, 90, 140, 255]);
        assert_eq!(
            a.classifier.classify(&bmp).p_ad,
            b.classifier.classify(&bmp).p_ad
        );
    }

    #[test]
    fn pretrained_prefix_changes_initialization() {
        let (bitmaps, labels) = dataset(6, 4);
        let mut cfg = quick_cfg();
        cfg.epochs = 1;
        let baseline = train(&bitmaps, &labels, &cfg);
        // Use a differently-seeded model of the same architecture as the
        // "pretrained" source.
        let mut src = percival_net_slim(cfg.width_divisor);
        kaiming_init(&mut src, &mut Pcg32::seed_from_u64(12345));
        cfg.pretrained = Some(src);
        let transferred = train(&bitmaps, &labels, &cfg);
        let bmp = Bitmap::new(32, 32, [10, 20, 30, 255]);
        assert_ne!(
            baseline.classifier.classify(&bmp).p_ad,
            transferred.classifier.classify(&bmp).p_ad,
            "transfer init must alter the training trajectory"
        );
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_dataset_panics() {
        train(&[], &[], &quick_cfg());
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use percival_webgen::profile::{build_balanced_dataset, DatasetProfile};
    use percival_webgen::Script;

    #[test]
    #[ignore]
    fn lr_probe() {
        let ds = build_balanced_dataset(1, DatasetProfile::Alexa, Script::Latin, 32, 40);
        let bitmaps: Vec<Bitmap> = ds.iter().map(|s| s.bitmap.clone()).collect();
        let labels: Vec<bool> = ds.iter().map(|s| s.is_ad).collect();
        for lr in [0.05f32, 0.02, 0.01, 0.005, 0.002] {
            let cfg = TrainConfig {
                input_size: 32,
                width_divisor: 4,
                epochs: 8,
                batch_size: 16,
                schedule: StepLr {
                    base: lr,
                    gamma: 0.1,
                    every: 30,
                },
                ..Default::default()
            };
            let t = train(&bitmaps, &labels, &cfg);
            let h = t.history.last().unwrap();
            eprintln!("lr={lr}: final loss {:.4} acc {:.3}", h.loss, h.accuracy);
        }
    }
}
