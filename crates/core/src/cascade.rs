//! The cascade front-end: cheap tiers ahead of the CNN.
//!
//! The paper positions PERCIVAL as a *complement* to filter lists, not a
//! replacement — "PERCIVAL can be deployed in conjunction with block lists"
//! (Section 5.2) — and its render-time overhead argument rests on the CNN
//! only paying its cost on images that actually need a perceptual opinion.
//! This module makes that composition explicit as a three-tier decision
//! cascade, cheapest first:
//!
//! - **Tier 0 — network filter.** The tokenized
//!   [`percival_filterlist::FilterEngine`] resolves requests whose URL is
//!   already covered by the block list, in amortized O(1) of the rule
//!   count. A blocked request never fetches, decodes, or classifies; an
//!   `@@` exception pins the creative as content.
//! - **Tier 1 — structural pre-filter.** The renderer's
//!   [`StructuralFeatures`] (IAB ad-sized boxes, iframe nesting,
//!   third-party origin edges) score the request; clear-cut scores are
//!   decided here, for free, without touching pixels.
//! - **Tier 2 — the CNN.** Only the residual slice — requests the list
//!   does not cover and the structure does not separate — reaches the
//!   perceptual classifier and its flight-control machinery.
//!
//! [`CascadeCounters`] attributes every request to the tier that resolved
//!   it, in the same monotonic-counter style as
//!   [`crate::flight::FlightCounters`], so serving telemetry can report
//!   how much traffic each tier absorbed.

use percival_filterlist::{
    easylist::synthetic_engine, FilterEngine, RequestInfo, ResourceType, Url,
    Verdict as FilterVerdict,
};
use percival_renderer::StructuralFeatures;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which tier resolved a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Tier 0: the tokenized filter-list match.
    NetworkFilter,
    /// Tier 1: the structural pre-filter.
    Structural,
    /// Tier 2: the perceptual classifier.
    Cnn,
}

/// The cascade's verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeDecision {
    /// Resolved as an ad by the given tier; do not fetch/decode/classify.
    Block(Tier),
    /// Resolved as content by the given tier; render without classifying.
    Keep(Tier),
    /// Undecided: the request falls through to the CNN (tier 2).
    Classify,
}

impl CascadeDecision {
    /// True when the cascade resolved the request without the CNN.
    pub fn resolved_early(&self) -> bool {
        !matches!(self, CascadeDecision::Classify)
    }
}

/// Which tiers run ahead of the CNN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeConfig {
    /// Run tier 0 (the network-filter match).
    pub network_filter: bool,
    /// Run tier 1 (the structural scorer).
    pub structural: bool,
    /// Tier-1 scores at or above this block outright.
    pub block_threshold: f32,
    /// Tier-1 scores at or below this keep outright.
    pub keep_threshold: f32,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            network_filter: true,
            structural: true,
            block_threshold: 0.8,
            keep_threshold: 0.1,
        }
    }
}

impl CascadeConfig {
    /// Reads the `PERCIVAL_CASCADE` knob: `off` (CNN-only), `t0`
    /// (network filter only), `t1` (structural only), `full` (both;
    /// the default for unset or unrecognized values).
    pub fn from_env() -> Self {
        match std::env::var("PERCIVAL_CASCADE").as_deref() {
            Ok("off") => CascadeConfig {
                network_filter: false,
                structural: false,
                ..Default::default()
            },
            Ok("t0") => CascadeConfig {
                structural: false,
                ..Default::default()
            },
            Ok("t1") => CascadeConfig {
                network_filter: false,
                ..Default::default()
            },
            _ => CascadeConfig::default(),
        }
    }
}

/// Monotonic per-tier attribution counters (the cascade's analogue of
/// [`crate::flight::FlightCounters`]). Every request increments `requests`
/// and exactly one resolution counter, so the resolution counters always
/// sum to `requests`.
#[derive(Debug, Default)]
pub struct CascadeCounters {
    requests: AtomicU64,
    tier0_blocked: AtomicU64,
    tier0_exempted: AtomicU64,
    tier1_blocked: AtomicU64,
    tier1_kept: AtomicU64,
    cnn_residual: AtomicU64,
}

impl CascadeCounters {
    /// Requests run through the cascade.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests blocked by a tier-0 filter rule.
    pub fn tier0_blocked(&self) -> u64 {
        self.tier0_blocked.load(Ordering::Relaxed)
    }

    /// Requests pinned as content by a tier-0 `@@` exception.
    pub fn tier0_exempted(&self) -> u64 {
        self.tier0_exempted.load(Ordering::Relaxed)
    }

    /// Requests blocked by the tier-1 structural score.
    pub fn tier1_blocked(&self) -> u64 {
        self.tier1_blocked.load(Ordering::Relaxed)
    }

    /// Requests kept by the tier-1 structural score.
    pub fn tier1_kept(&self) -> u64 {
        self.tier1_kept.load(Ordering::Relaxed)
    }

    /// Requests that fell through to the CNN.
    pub fn cnn_residual(&self) -> u64 {
        self.cnn_residual.load(Ordering::Relaxed)
    }

    /// An atomic-free copy of the counters.
    pub fn snapshot(&self) -> CascadeSnapshot {
        CascadeSnapshot {
            requests: self.requests(),
            tier0_blocked: self.tier0_blocked(),
            tier0_exempted: self.tier0_exempted(),
            tier1_blocked: self.tier1_blocked(),
            tier1_kept: self.tier1_kept(),
            cnn_residual: self.cnn_residual(),
        }
    }

    fn record(&self, decision: CascadeDecision) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let counter = match decision {
            CascadeDecision::Block(Tier::NetworkFilter) => &self.tier0_blocked,
            CascadeDecision::Keep(Tier::NetworkFilter) => &self.tier0_exempted,
            CascadeDecision::Block(Tier::Structural) => &self.tier1_blocked,
            CascadeDecision::Keep(Tier::Structural) => &self.tier1_kept,
            CascadeDecision::Block(Tier::Cnn)
            | CascadeDecision::Keep(Tier::Cnn)
            | CascadeDecision::Classify => &self.cnn_residual,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`CascadeCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeSnapshot {
    /// Requests run through the cascade.
    pub requests: u64,
    /// Requests blocked by a tier-0 filter rule.
    pub tier0_blocked: u64,
    /// Requests pinned as content by a tier-0 exception.
    pub tier0_exempted: u64,
    /// Requests blocked by the tier-1 structural score.
    pub tier1_blocked: u64,
    /// Requests kept by the tier-1 structural score.
    pub tier1_kept: u64,
    /// Requests that fell through to the CNN.
    pub cnn_residual: u64,
}

impl CascadeSnapshot {
    /// Requests resolved without the CNN.
    pub fn resolved_early(&self) -> u64 {
        self.tier0_blocked + self.tier0_exempted + self.tier1_blocked + self.tier1_kept
    }

    /// Fraction of requests resolved without the CNN (0 when idle).
    pub fn early_fraction(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.resolved_early() as f64 / self.requests as f64
    }

    /// Merges another snapshot into this one (fleet aggregation).
    pub fn absorb(&mut self, other: &CascadeSnapshot) {
        self.requests += other.requests;
        self.tier0_blocked += other.tier0_blocked;
        self.tier0_exempted += other.tier0_exempted;
        self.tier1_blocked += other.tier1_blocked;
        self.tier1_kept += other.tier1_kept;
        self.cnn_residual += other.cnn_residual;
    }
}

impl core::fmt::Display for CascadeSnapshot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "cascade: {} requests | t0 {} blocked / {} exempted | t1 {} blocked / {} kept | cnn {} ({:.1}% early)",
            self.requests,
            self.tier0_blocked,
            self.tier0_exempted,
            self.tier1_blocked,
            self.tier1_kept,
            self.cnn_residual,
            self.early_fraction() * 100.0,
        )
    }
}

/// The assembled front-end: a filter engine, a structural scorer, and the
/// per-tier counters. Thread-safe; one instance serves all render workers.
pub struct Cascade {
    engine: FilterEngine,
    config: CascadeConfig,
    counters: CascadeCounters,
}

impl Cascade {
    /// A cascade over an explicit filter engine.
    pub fn new(engine: FilterEngine, config: CascadeConfig) -> Self {
        Cascade {
            engine,
            config,
            counters: CascadeCounters::default(),
        }
    }

    /// A cascade over the bundled synthetic EasyList, configured from the
    /// `PERCIVAL_CASCADE` environment knob.
    pub fn synthetic() -> Self {
        Cascade::synthetic_with(CascadeConfig::from_env())
    }

    /// A cascade over the bundled synthetic EasyList with an explicit
    /// configuration (environment-independent; what tests and benches
    /// want).
    pub fn synthetic_with(config: CascadeConfig) -> Self {
        Cascade::new(synthetic_engine(), config)
    }

    /// The active tier configuration.
    pub fn config(&self) -> &CascadeConfig {
        &self.config
    }

    /// The per-tier attribution counters.
    pub fn counters(&self) -> &CascadeCounters {
        &self.counters
    }

    /// The wrapped filter engine.
    pub fn engine(&self) -> &FilterEngine {
        &self.engine
    }

    /// Runs the tiers, cheapest first, and attributes the outcome.
    ///
    /// `url` is the creative's resource URL, `source_url` the document that
    /// requested it (empty when unknown — tier 0 is skipped then, because
    /// `$domain` / party options cannot be evaluated), and `structural`
    /// the renderer's features when the request came through the display
    /// path.
    pub fn decide(
        &self,
        url: &str,
        source_url: &str,
        structural: Option<&StructuralFeatures>,
    ) -> CascadeDecision {
        let decision = self
            .decide_tier0(url, source_url)
            .or_else(|| self.decide_tier1(structural))
            .unwrap_or(CascadeDecision::Classify);
        self.counters.record(decision);
        decision
    }

    /// [`Cascade::decide`] with per-tier wall times for the flight
    /// recorder's `CascadeT0` / `CascadeT1` spans: returns the decision
    /// plus `(tier0_ns, tier1_ns)` — a tier that did not run (disabled,
    /// missing context, or short-circuited by an earlier tier) reports 0.
    /// Kept separate from [`Cascade::decide`] so the untraced hot path
    /// pays no clock reads.
    pub fn decide_timed(
        &self,
        url: &str,
        source_url: &str,
        structural: Option<&StructuralFeatures>,
    ) -> (CascadeDecision, u64, u64) {
        let t0_start = Instant::now();
        let tier0 = self.decide_tier0(url, source_url);
        let t0_ns = t0_start.elapsed().as_nanos() as u64;
        if let Some(decision) = tier0 {
            self.counters.record(decision);
            return (decision, t0_ns, 0);
        }
        let t1_start = Instant::now();
        let decision = self
            .decide_tier1(structural)
            .unwrap_or(CascadeDecision::Classify);
        let t1_ns = t1_start.elapsed().as_nanos() as u64;
        self.counters.record(decision);
        (decision, t0_ns, t1_ns)
    }

    /// Tier 0 — the network-filter match; `None` when undecided.
    fn decide_tier0(&self, url: &str, source_url: &str) -> Option<CascadeDecision> {
        if self.config.network_filter && !source_url.is_empty() {
            if let (Ok(u), Ok(s)) = (Url::parse(url), Url::parse(source_url)) {
                let req = RequestInfo {
                    url: &u,
                    source: &s,
                    resource_type: ResourceType::Image,
                };
                match self.engine.check(&req) {
                    FilterVerdict::Block { .. } => {
                        return Some(CascadeDecision::Block(Tier::NetworkFilter))
                    }
                    FilterVerdict::Exempted { .. } => {
                        return Some(CascadeDecision::Keep(Tier::NetworkFilter))
                    }
                    FilterVerdict::Allow => {}
                }
            }
        }
        None
    }

    /// Tier 1 — the structural pre-filter; `None` when undecided.
    fn decide_tier1(&self, structural: Option<&StructuralFeatures>) -> Option<CascadeDecision> {
        if self.config.structural {
            if let Some(features) = structural {
                let score = features.score();
                if score >= self.config.block_threshold {
                    return Some(CascadeDecision::Block(Tier::Structural));
                }
                if score <= self.config.keep_threshold {
                    return Some(CascadeDecision::Keep(Tier::Structural));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> Cascade {
        Cascade::new(synthetic_engine(), CascadeConfig::default())
    }

    fn ad_features() -> StructuralFeatures {
        StructuralFeatures::from_parts(728, 90, 1, true)
    }

    fn content_features() -> StructuralFeatures {
        StructuralFeatures::from_parts(640, 480, 0, false)
    }

    #[test]
    fn listed_creative_is_blocked_at_tier0() {
        let c = full();
        let d = c.decide(
            "http://adnet-alpha.web/serve/banner_728x90_3.png",
            "http://news0.web/",
            Some(&ad_features()),
        );
        assert_eq!(d, CascadeDecision::Block(Tier::NetworkFilter));
        assert_eq!(c.counters().tier0_blocked(), 1);
        assert_eq!(c.counters().cnn_residual(), 0);
    }

    #[test]
    fn exception_is_kept_at_tier0() {
        let c = full();
        // Blocked by `||adnet-alpha.web^`, overridden by the `/legal/*`
        // exception — the cascade must report the exemption, not re-litigate
        // the creative structurally.
        let d = c.decide(
            "http://adnet-alpha.web/legal/terms.png",
            "http://news0.web/",
            Some(&ad_features()),
        );
        assert_eq!(d, CascadeDecision::Keep(Tier::NetworkFilter));
        assert_eq!(c.counters().tier0_exempted(), 1);
    }

    #[test]
    fn unlisted_ad_shape_is_blocked_at_tier1() {
        // A regional network EasyList does not cover: tier 0 passes, the
        // structure gives it away.
        let c = full();
        let d = c.decide(
            "http://adnet-seoul.web/serve2/banner_728x90_1.png",
            "http://kr-news0.web/",
            Some(&ad_features()),
        );
        assert_eq!(d, CascadeDecision::Block(Tier::Structural));
        assert_eq!(c.counters().tier1_blocked(), 1);
    }

    #[test]
    fn plain_content_is_kept_at_tier1() {
        let c = full();
        let d = c.decide(
            "http://news0.web/static/img/photo.png",
            "http://news0.web/",
            Some(&content_features()),
        );
        assert_eq!(d, CascadeDecision::Keep(Tier::Structural));
        assert_eq!(c.counters().tier1_kept(), 1);
    }

    #[test]
    fn ambiguous_requests_reach_the_cnn() {
        let c = full();
        // Mid-range score: first-party promo in an IAB box (0.45).
        let promo = StructuralFeatures::from_parts(300, 250, 0, false);
        let d = c.decide(
            "http://shop1.web/img/offer.png",
            "http://shop1.web/",
            Some(&promo),
        );
        assert_eq!(d, CascadeDecision::Classify);
        assert_eq!(c.counters().cnn_residual(), 1);
    }

    #[test]
    fn missing_context_degrades_gracefully() {
        let c = full();
        // No source: tier 0 cannot run. No features: tier 1 cannot run.
        assert_eq!(
            c.decide("http://adnet-alpha.web/serve/banner_1.png", "", None),
            CascadeDecision::Classify
        );
    }

    #[test]
    fn disabled_tiers_pass_everything_to_the_cnn() {
        let c = Cascade::new(
            synthetic_engine(),
            CascadeConfig {
                network_filter: false,
                structural: false,
                ..Default::default()
            },
        );
        let d = c.decide(
            "http://adnet-alpha.web/serve/banner_728x90_3.png",
            "http://news0.web/",
            Some(&ad_features()),
        );
        assert_eq!(d, CascadeDecision::Classify);
    }

    #[test]
    fn counters_always_sum_to_requests() {
        let c = full();
        let cases = [
            (
                "http://adnet-alpha.web/serve/banner_1.png",
                "http://news0.web/",
            ),
            ("http://cdn.web/assets/a.png", "http://news0.web/"),
            ("http://adnet-seoul.web/x.png", "http://kr-news0.web/"),
            ("http://news0.web/photo.png", "http://news0.web/"),
            ("http://shop1.web/offer.png", "http://shop1.web/"),
            ("not a url", ""),
        ];
        for (i, (url, src)) in cases.iter().enumerate() {
            let f = if i % 2 == 0 {
                ad_features()
            } else {
                content_features()
            };
            c.decide(url, src, Some(&f));
        }
        let s = c.counters().snapshot();
        assert_eq!(s.requests, cases.len() as u64);
        assert_eq!(s.resolved_early() + s.cnn_residual, s.requests);
    }

    #[test]
    fn decide_timed_matches_decide_and_attributes_tier_times() {
        let c = full();
        let (d, t0_ns, t1_ns) = c.decide_timed(
            "http://adnet-alpha.web/serve/banner_728x90_3.png",
            "http://news0.web/",
            Some(&ad_features()),
        );
        assert_eq!(d, CascadeDecision::Block(Tier::NetworkFilter));
        assert!(t0_ns > 0, "tier 0 ran and was timed");
        assert_eq!(t1_ns, 0, "tier 1 was short-circuited");
        let (d2, _, _) = c.decide_timed(
            "http://shop1.web/img/offer.png",
            "http://shop1.web/",
            Some(&StructuralFeatures::from_parts(300, 250, 0, false)),
        );
        assert_eq!(d2, CascadeDecision::Classify);
        // Timed decisions attribute counters exactly like untimed ones.
        let s = c.counters().snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.tier0_blocked, 1);
        assert_eq!(s.cnn_residual, 1);
    }

    #[test]
    fn snapshot_display_and_absorb() {
        let c = full();
        c.decide(
            "http://adnet-alpha.web/serve/banner_1.png",
            "http://news0.web/",
            None,
        );
        let mut total = CascadeSnapshot::default();
        total.absorb(&c.counters().snapshot());
        total.absorb(&c.counters().snapshot());
        assert_eq!(total.requests, 2);
        assert_eq!(total.tier0_blocked, 2);
        let line = total.to_string();
        assert!(line.contains("2 requests"), "{line}");
        assert!(line.contains("100.0% early"), "{line}");
    }
}
