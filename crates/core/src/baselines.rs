//! Model-size baselines for the architecture comparison.
//!
//! The paper positions PERCIVAL against the models prior perceptual ad
//! blockers used: Sentinel's YOLO backbone (">200MB", Section 7), and the
//! standard classifiers the authors tried first — "Inception-V4,
//! Inception, and ResNet-52 ... the model size and the classification
//! time of these systems was prohibitive" (Section 4.2). We record their
//! published parameter counts analytically (instantiating a 60M-parameter
//! tensor would add nothing but allocation time) and compare serialized
//! f32 sizes; PERCIVAL's own numbers come from the real in-repo model.

/// A published comparison model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineSpec {
    /// Model family name.
    pub name: &'static str,
    /// Parameter count (published figure).
    pub params: u64,
    /// Whether prior perceptual ad blockers shipped it.
    pub used_by: &'static str,
}

/// Published comparison models.
pub const BASELINES: [BaselineSpec; 4] = [
    BaselineSpec {
        name: "YOLOv2 (Sentinel)",
        params: 50_650_000,
        used_by: "Sentinel [58]",
    },
    BaselineSpec {
        name: "ResNet-52-class",
        params: 25_600_000,
        used_by: "authors' pilot",
    },
    BaselineSpec {
        name: "Inception-V4",
        params: 42_700_000,
        used_by: "authors' pilot",
    },
    BaselineSpec {
        name: "SqueezeNet (original)",
        params: 1_235_496,
        used_by: "starting point",
    },
];

/// Serialized f32 size in bytes for a parameter count.
pub fn f32_size_bytes(params: u64) -> u64 {
    params * 4
}

/// Size in megabytes (binary).
pub fn size_mb(params: u64) -> f64 {
    f32_size_bytes(params) as f64 / (1024.0 * 1024.0)
}

/// The paper's headline compression factor: a reference model's size over
/// PERCIVAL's size ("smaller by factor of 74, compared to other models of
/// this kind", Section 1.1 — relative to the Sentinel-class model).
pub fn compression_factor(reference_bytes: u64, percival_bytes: u64) -> f64 {
    reference_bytes as f64 / percival_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::percival_net;

    #[test]
    fn sentinel_class_model_exceeds_200_mb() {
        let yolo = BASELINES[0];
        assert!(size_mb(yolo.params) > 190.0, "{}", size_mb(yolo.params));
    }

    #[test]
    fn percival_compression_factor_is_paper_scale() {
        let percival = percival_net().size_bytes_f32() as u64;
        let yolo_bytes = f32_size_bytes(BASELINES[0].params);
        let factor = compression_factor(yolo_bytes, percival);
        // Paper: "smaller by factor of 74". Our fork lands in that regime.
        assert!(
            (50.0..250.0).contains(&factor),
            "compression factor {factor:.0} out of the paper's regime"
        );
    }

    #[test]
    fn squeezenet_baseline_matches_its_published_size() {
        let sq = BASELINES[3];
        let mb = size_mb(sq.params);
        assert!((4.0..5.5).contains(&mb), "published ~4.8 MB, got {mb:.2}");
    }
}
