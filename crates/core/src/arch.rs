//! Network architectures: PERCIVAL's SqueezeNet fork and the original
//! SqueezeNet it was pruned from (Figure 3).
//!
//! The fork (paper, Section 4.2): "Our modified network consists of a
//! convolution layer, followed by 6 fire modules and a final convolution
//! layer, a global average pooling layer and a SoftMax layer. As opposed
//! to the original SqueezeNet, we down-sample the feature maps at regular
//! intervals in the network ... We also perform max-pooling after the
//! first convolution layer and after every two fire modules."

use percival_nn::layer::{Conv2d, Fire, Layer};
use percival_nn::Sequential;
use percival_tensor::{Conv2dCfg, PoolCfg, Shape};

/// Input channels: the pipeline hands PERCIVAL RGBA buffers ("scales it
/// to 224x224x4", Section 3.3).
pub const INPUT_CHANNELS: usize = 4;
/// The default (paper) input edge length.
pub const PAPER_INPUT_SIZE: usize = 224;
/// Output classes: ad / not-ad.
pub const NUM_CLASSES: usize = 2;

/// Builds PERCIVAL's pruned SqueezeNet fork.
///
/// Layout: `conv3x3/2(64) -> pool -> fire(16,64) x2 -> pool ->
/// fire(32,128) x2 -> pool -> fire(48,192) x2 -> conv1x1(2) -> GAP`.
/// Softmax is applied by the loss/classifier, not stored as a layer.
///
/// At f32 precision this serializes to ~1.4 MB — the paper's "less
/// than 2 MB" budget (Section 2.3).
pub fn percival_net() -> Sequential {
    let pool = PoolCfg::squeeze_default();
    Sequential::new(vec![
        Layer::Conv(Conv2d::new(
            64,
            INPUT_CHANNELS,
            3,
            Conv2dCfg { stride: 2, pad: 1 },
        )),
        Layer::Relu,
        Layer::MaxPool(pool),
        Layer::Fire(Fire::new(64, 16, 64)),
        Layer::Fire(Fire::new(128, 16, 64)),
        Layer::MaxPool(pool),
        Layer::Fire(Fire::new(128, 32, 128)),
        Layer::Fire(Fire::new(256, 32, 128)),
        Layer::MaxPool(pool),
        Layer::Fire(Fire::new(256, 48, 192)),
        Layer::Fire(Fire::new(384, 48, 192)),
        Layer::Conv(Conv2d::new(
            NUM_CLASSES,
            384,
            1,
            Conv2dCfg { stride: 1, pad: 0 },
        )),
        Layer::GlobalAvgPool,
    ])
}

/// A narrower PERCIVAL variant for fast CPU experiments: same topology,
/// `width_divisor`-times fewer channels everywhere. `percival_net_slim(1)`
/// equals [`percival_net`].
///
/// # Panics
///
/// Panics if `width_divisor` is 0 or does not divide the channel plan.
pub fn percival_net_slim(width_divisor: usize) -> Sequential {
    assert!(width_divisor > 0, "width divisor must be positive");
    let d = width_divisor;
    assert!(
        [64usize, 16, 32, 48, 128, 192].iter().all(|c| c % d == 0),
        "width divisor {d} must divide the channel plan"
    );
    let pool = PoolCfg::squeeze_default();
    Sequential::new(vec![
        Layer::Conv(Conv2d::new(
            64 / d,
            INPUT_CHANNELS,
            3,
            Conv2dCfg { stride: 2, pad: 1 },
        )),
        Layer::Relu,
        Layer::MaxPool(pool),
        Layer::Fire(Fire::new(64 / d, 16 / d, 64 / d)),
        Layer::Fire(Fire::new(128 / d, 16 / d, 64 / d)),
        Layer::MaxPool(pool),
        Layer::Fire(Fire::new(128 / d, 32 / d, 128 / d)),
        Layer::Fire(Fire::new(256 / d, 32 / d, 128 / d)),
        Layer::MaxPool(pool),
        Layer::Fire(Fire::new(256 / d, 48 / d, 192 / d)),
        Layer::Fire(Fire::new(384 / d, 48 / d, 192 / d)),
        Layer::Conv(Conv2d::new(
            NUM_CLASSES,
            384 / d,
            1,
            Conv2dCfg { stride: 1, pad: 0 },
        )),
        Layer::GlobalAvgPool,
    ])
}

/// The original SqueezeNet v1.1 (8 fire modules, 1000-way classifier) —
/// the starting point PERCIVAL was pruned from, used for the size
/// comparison and as the transfer-learning source geometry.
pub fn original_squeezenet() -> Sequential {
    let pool = PoolCfg::squeeze_default();
    Sequential::new(vec![
        Layer::Conv(Conv2d::new(
            64,
            INPUT_CHANNELS,
            3,
            Conv2dCfg { stride: 2, pad: 1 },
        )),
        Layer::Relu,
        Layer::MaxPool(pool),
        Layer::Fire(Fire::new(64, 16, 64)),
        Layer::Fire(Fire::new(128, 16, 64)),
        Layer::MaxPool(pool),
        Layer::Fire(Fire::new(128, 32, 128)),
        Layer::Fire(Fire::new(256, 32, 128)),
        Layer::MaxPool(pool),
        Layer::Fire(Fire::new(256, 48, 192)),
        Layer::Fire(Fire::new(384, 48, 192)),
        Layer::Fire(Fire::new(384, 64, 256)),
        Layer::Fire(Fire::new(512, 64, 256)),
        Layer::Conv(Conv2d::new(1000, 512, 1, Conv2dCfg { stride: 1, pad: 0 })),
        Layer::GlobalAvgPool,
    ])
}

/// Smallest input edge the pooling schedule supports.
pub const MIN_INPUT_SIZE: usize = 32;

/// Validates that the network accepts `size x size` inputs and produces
/// `NUM_CLASSES` logits.
pub fn accepts_input(model: &Sequential, size: usize) -> bool {
    if size < MIN_INPUT_SIZE {
        return false;
    }
    let out = model.output_shape(Shape::new(1, INPUT_CHANNELS, size, size));
    (out.h, out.w) == (1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percival_net_is_under_two_megabytes() {
        let net = percival_net();
        let bytes = net.size_bytes_f32();
        assert!(
            bytes < 2 * 1024 * 1024,
            "model must stay under 2 MB: {} bytes",
            bytes
        );
        assert!(bytes > 1024 * 1024, "sanity: should be over 1 MB: {bytes}");
    }

    #[test]
    fn original_squeezenet_is_about_4_8_mb() {
        let net = original_squeezenet();
        let mb = net.size_bytes_f32() as f64 / (1024.0 * 1024.0);
        assert!((4.0..5.6).contains(&mb), "SqueezeNet ~4.8 MB, got {mb:.2}");
    }

    #[test]
    fn fork_is_smaller_and_cheaper_than_original() {
        let fork = percival_net();
        let orig = original_squeezenet();
        assert!(fork.param_count() < orig.param_count());
        let input = Shape::new(1, INPUT_CHANNELS, 224, 224);
        assert!(fork.flops(input) < orig.flops(input));
    }

    #[test]
    fn paper_geometry_produces_two_logits() {
        let net = percival_net();
        let out = net.output_shape(Shape::new(
            1,
            INPUT_CHANNELS,
            PAPER_INPUT_SIZE,
            PAPER_INPUT_SIZE,
        ));
        assert_eq!(out, Shape::new(1, NUM_CLASSES, 1, 1));
    }

    #[test]
    fn accepts_small_experiment_inputs() {
        let net = percival_net();
        for size in [32, 48, 64, 96, 128, 224] {
            assert!(accepts_input(&net, size), "size {size}");
        }
        assert!(!accepts_input(&net, 16));
    }

    #[test]
    fn slim_variants_shrink_quadratically() {
        let full = percival_net_slim(1);
        assert_eq!(full.param_count(), percival_net().param_count());
        let slim = percival_net_slim(4);
        assert!(slim.param_count() * 8 < full.param_count());
        assert!(accepts_input(&slim, 64));
    }

    #[test]
    fn transfer_prefix_matches_original_squeezenet() {
        // The paper initializes conv1 + fire1..fire4 from pretrained
        // SqueezeNet; those geometries must line up between the two nets.
        let mut fork = percival_net();
        let mut orig = original_squeezenet();
        percival_nn::init::kaiming_init(&mut orig, &mut percival_util::Pcg32::seed_from_u64(1));
        let copied = percival_nn::init::transfer_prefix(&mut fork, &orig);
        // The fork shares conv1 and all six fire modules with the original
        // (1 + 6 x 3 = 19 tensors); the paper reused conv1 + fire1-4, a
        // subset of this matching prefix.
        assert_eq!(copied, 19, "conv1 and fire1-6 geometries should line up");
    }
}
