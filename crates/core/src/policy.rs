//! What happens to a blocked frame.
//!
//! Section 3.3: "In case the content is cleared, we have several options
//! on how to fill up the surrounding white-space. We can either collapse
//! it by propagating the information upwards or display a predefined
//! image (user's spirit animal) in place of the ad."

use percival_imgcodec::draw::{fill_disc, fill_rect};
use percival_imgcodec::Bitmap;

/// The replacement behaviour for blocked ad frames.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum BlockPolicy {
    /// Clear the buffer to transparent pixels (the paper's default).
    #[default]
    Clear,
    /// Paint a predefined placeholder (the "spirit animal") scaled to the
    /// blocked frame.
    Replace(Bitmap),
}

impl BlockPolicy {
    /// Applies the policy to a blocked buffer in place.
    pub fn apply(&self, bitmap: &mut Bitmap) {
        match self {
            BlockPolicy::Clear => bitmap.clear(),
            BlockPolicy::Replace(img) => {
                let scaled = img.scaled_nearest(bitmap.width(), bitmap.height());
                bitmap.data_mut().copy_from_slice(scaled.data());
            }
        }
    }

    /// A friendly default replacement image (a minimal "spirit animal":
    /// a cat face on a soft background).
    pub fn spirit_animal(size: usize) -> Bitmap {
        let size = size.max(8);
        let mut b = Bitmap::new(size, size, [235, 240, 245, 255]);
        let s = size as i32;
        let fur = [150, 160, 175, 255];
        fill_disc(&mut b, s / 2, s * 11 / 20, s / 4, fur); // head
        fill_rect(
            &mut b,
            s * 5 / 16,
            s / 4,
            (s / 8) as u32,
            (s / 6) as u32,
            fur,
        ); // left ear
        fill_rect(
            &mut b,
            s * 9 / 16,
            s / 4,
            (s / 8) as u32,
            (s / 6) as u32,
            fur,
        ); // right ear
        fill_disc(&mut b, s * 2 / 5, s / 2, (s / 24).max(1), [30, 30, 30, 255]); // eyes
        fill_disc(&mut b, s * 3 / 5, s / 2, (s / 24).max(1), [30, 30, 30, 255]);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_policy_blanks_buffer() {
        let mut b = Bitmap::new(10, 10, [200, 100, 50, 255]);
        BlockPolicy::Clear.apply(&mut b);
        assert!(b.is_blank());
    }

    #[test]
    fn replace_policy_scales_placeholder() {
        let placeholder = BlockPolicy::spirit_animal(32);
        let policy = BlockPolicy::Replace(placeholder);
        let mut wide = Bitmap::new(100, 20, [1, 2, 3, 255]);
        policy.apply(&mut wide);
        assert!(!wide.is_blank());
        assert_eq!(wide.width(), 100);
        assert_eq!(wide.height(), 20);
    }

    #[test]
    fn spirit_animal_is_not_blank_and_sized() {
        let s = BlockPolicy::spirit_animal(48);
        assert_eq!(s.width(), 48);
        assert!(!s.is_blank());
        let tiny = BlockPolicy::spirit_animal(1);
        assert!(tiny.width() >= 8, "clamps tiny sizes");
    }
}
