//! PERCIVAL: the paper's primary contribution.
//!
//! A compact SqueezeNet-fork CNN ([`arch`]) classifies decoded image
//! buffers as ad / not-ad ([`classifier`]); it trains with the paper's
//! exact recipe ([`train`](mod@train)); it plugs into the rendering pipeline's
//! post-decode choke point as an [`hook::PercivalHook`] (blocking
//! synchronously in the rendering critical path), or asynchronously with
//! memoized verdicts ([`memo`]) — the paper's low-latency alternative
//! deployment; blocked frames are handled by a [`policy::BlockPolicy`]
//! (clear the buffer, or paint a replacement image). [`baselines`] holds
//! the model-size comparison targets of the architecture discussion
//! (Sections 2.3 and 7). The queue → memo → single-flight → publish
//! protocol behind the batched [`engine`] (and the serving layer's shards)
//! lives once, in the [`flight`] module.

pub mod arch;
pub mod baselines;
pub mod cascade;
pub mod classifier;
pub mod engine;
pub mod flight;
pub mod hook;
pub mod memo;
pub mod policy;
pub mod train;

pub use arch::{original_squeezenet, percival_net};
pub use cascade::{
    Cascade, CascadeConfig, CascadeCounters, CascadeDecision, CascadeSnapshot, Tier,
};
pub use classifier::{Classifier, Precision, Prediction, QuantScheme};
pub use engine::{EngineConfig, EngineStatsSnapshot, InferenceEngine, VerdictTicket};
pub use flight::{AdmissionHint, FlightCounters, FlightSnapshot, FlightTable};
pub use hook::PercivalHook;
pub use memo::MemoizedClassifier;
pub use policy::BlockPolicy;
pub use train::{evaluate, train, TrainConfig, TrainedModel};
