//! The batched inference engine: queue → micro-batch → pool → memo.
//!
//! PERCIVAL's low-latency deployment classifies images asynchronously and
//! memoizes verdicts (Section 1.1/6). This module is the throughput side of
//! that story: a submission queue accepts classification requests from any
//! thread (raster workers, crawlers, benchmarks), coalesces whatever is
//! pending into an `N x 4 x S x S` micro-batch, runs one batched forward
//! pass — which amortizes weight-panel packing and keeps the GEMM kernels
//! on wide tiles — and resolves every waiting request.
//!
//! Two deduplication layers sit in front of the CNN:
//!
//! 1. the [`MemoizedClassifier`] LRU: verdicts for previously seen content
//!    hashes resolve immediately;
//! 2. a *single-flight* table: concurrent submissions of the same
//!    not-yet-classified creative share one queue slot and one CNN pass —
//!    the common case when an ad network serves one creative into many
//!    slots of the same page load.
//!
//! The synchronous API ([`InferenceEngine::submit_wait`]) keeps tests and
//! the in-critical-path deployment simple; [`InferenceEngine::submit`]
//! returns a ticket for callers that want fire-and-forget or deferred
//! pickup semantics.

use crate::classifier::{Classifier, Precision, Prediction};
use crate::memo::MemoizedClassifier;
use percival_imgcodec::Bitmap;
use percival_tensor::{Shape, Tensor, Workspace};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Largest micro-batch assembled per forward pass. Bigger batches
    /// amortize packing further but add queueing latency to the first image
    /// of the batch; 8 is a good default for interactive rendering.
    pub max_batch: usize,
    /// Capacity of the memoized-verdict LRU shared with the hooks.
    pub cache_capacity: usize,
    /// Numeric precision of the served forward pass. [`Precision::Int8`]
    /// trades bounded logit drift for a substantially faster CNN; two
    /// engines over the same weights can serve f32 and int8 side by side.
    pub precision: Precision,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 8,
            cache_capacity: 4096,
            precision: Precision::F32,
        }
    }
}

/// A plain-data copy of the engine counters at one instant, so callers
/// (the serving layer, benches, reports) consume one coherent value
/// instead of reading atomics field by field.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStatsSnapshot {
    /// Total submissions (including cache hits).
    pub submitted: u64,
    /// Submissions answered from the verdict cache without queueing.
    pub memo_hits: u64,
    /// Submissions merged into an already-queued identical image.
    pub coalesced: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Images classified through micro-batches.
    pub batched_images: u64,
    /// Largest micro-batch observed.
    pub max_batch: u64,
    /// Fraction of submissions resolved without a CNN pass (memo hits plus
    /// single-flight coalescing over total submissions); 0 when idle.
    pub dedup_rate: f64,
}

impl std::fmt::Display for EngineStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted {}  memo_hits {}  coalesced {}  batches {}  batched_images {}  max_batch {}  dedup {:.1}%",
            self.submitted,
            self.memo_hits,
            self.coalesced,
            self.batches,
            self.batched_images,
            self.max_batch,
            self.dedup_rate * 100.0
        )
    }
}

/// Engine counters (all monotonic).
#[derive(Debug, Default)]
pub struct EngineStats {
    submitted: AtomicU64,
    memo_hits: AtomicU64,
    coalesced: AtomicU64,
    batches: AtomicU64,
    batched_images: AtomicU64,
    max_batch: AtomicU64,
}

impl EngineStats {
    /// Total submissions (including cache hits).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Submissions answered from the verdict cache without queueing.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Submissions merged into an already-queued identical image
    /// (single-flight deduplication).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Micro-batches executed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Images classified through micro-batches.
    pub fn batched_images(&self) -> u64 {
        self.batched_images.load(Ordering::Relaxed)
    }

    /// Largest micro-batch observed.
    pub fn max_batch(&self) -> u64 {
        self.max_batch.load(Ordering::Relaxed)
    }

    /// Captures every counter (plus the derived deduplication rate) as one
    /// plain-data value.
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        let submitted = self.submitted();
        let memo_hits = self.memo_hits();
        let coalesced = self.coalesced();
        EngineStatsSnapshot {
            submitted,
            memo_hits,
            coalesced,
            batches: self.batches(),
            batched_images: self.batched_images(),
            max_batch: self.max_batch(),
            dedup_rate: if submitted == 0 {
                0.0
            } else {
                (memo_hits + coalesced) as f64 / submitted as f64
            },
        }
    }
}

struct QueuedImage {
    key: u64,
    /// Already preprocessed to `1 x 4 x S x S` by the submitting thread.
    tensor: Tensor,
}

#[derive(Default)]
struct EngineState {
    queue: VecDeque<QueuedImage>,
    /// Single-flight table: content hash → everyone waiting on it.
    waiters: HashMap<u64, Vec<Sender<Prediction>>>,
    shutdown: bool,
}

struct Shared {
    memo: Arc<MemoizedClassifier>,
    cfg: EngineConfig,
    state: Mutex<EngineState>,
    work_ready: Condvar,
    idle: Condvar,
    /// Distinct images queued or mid-batch (drives [`InferenceEngine::flush`]).
    pending: AtomicUsize,
    stats: EngineStats,
}

/// A pending verdict returned by [`InferenceEngine::submit`].
pub struct VerdictTicket {
    rx: Receiver<Prediction>,
}

impl VerdictTicket {
    /// Blocks until the verdict is available.
    ///
    /// # Panics
    ///
    /// Panics if the engine shut down before resolving this request.
    pub fn wait(self) -> Prediction {
        self.rx
            .recv()
            .expect("inference engine dropped a pending request")
    }

    /// Returns the verdict if it is already available.
    pub fn poll(&self) -> Option<Prediction> {
        self.rx.try_recv().ok()
    }
}

/// The micro-batching classification service.
pub struct InferenceEngine {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
}

impl InferenceEngine {
    /// Spawns an engine around a trained classifier, switching it to the
    /// configured [`EngineConfig::precision`] first.
    pub fn new(classifier: Classifier, cfg: EngineConfig) -> Self {
        let classifier = classifier.with_precision(cfg.precision);
        let memo = Arc::new(MemoizedClassifier::new(classifier, cfg.cache_capacity));
        Self::with_memo(memo, cfg)
    }

    /// Spawns an engine sharing an existing memoized classifier (cache
    /// misses flow through the batcher; hits never enter the queue). The
    /// wrapped classifier keeps its own precision here —
    /// [`EngineConfig::precision`] only applies when the engine owns
    /// classifier construction ([`InferenceEngine::new`]).
    pub fn with_memo(memo: Arc<MemoizedClassifier>, cfg: EngineConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            memo,
            cfg,
            state: Mutex::new(EngineState::default()),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            pending: AtomicUsize::new(0),
            stats: EngineStats::default(),
        });
        let worker_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("percival-batcher".into())
            .spawn(move || batcher_main(&worker_shared))
            .expect("spawn inference batcher");
        InferenceEngine {
            shared,
            batcher: Some(batcher),
        }
    }

    /// The shared verdict cache.
    pub fn memo(&self) -> &Arc<MemoizedClassifier> {
        &self.shared.memo
    }

    /// The wrapped classifier.
    pub fn classifier(&self) -> &Classifier {
        self.shared.memo.classifier()
    }

    /// Counter access.
    pub fn stats(&self) -> &EngineStats {
        &self.shared.stats
    }

    /// Submits one image for classification; returns immediately.
    ///
    /// Cache hits resolve the ticket before this call returns. Otherwise
    /// the image joins (or creates) its single-flight group and the verdict
    /// arrives once its micro-batch has run.
    pub fn submit(&self, bitmap: &Bitmap) -> VerdictTicket {
        let stats = &self.shared.stats;
        stats.submitted.fetch_add(1, Ordering::Relaxed);
        let key = bitmap.content_hash();
        let (tx, rx) = channel();
        if let Some(p_ad) = self.shared.memo.cached(key) {
            stats.memo_hits.fetch_add(1, Ordering::Relaxed);
            self.shared.memo.record_hit();
            let _ = tx.send(self.verdict(p_ad, std::time::Duration::ZERO));
            return VerdictTicket { rx };
        }
        // Preprocess on the submitting thread (as the old inline path did),
        // so the batcher never serializes O(batch) resizes while every
        // submitter waits. Wasted only when this submission coalesces.
        let input_size = self.shared.memo.classifier().input_size();
        let tensor = Classifier::preprocess(bitmap, input_size);

        let mut state = self.shared.state.lock().expect("engine state");
        match state.waiters.get_mut(&key) {
            Some(group) => {
                stats.coalesced.fetch_add(1, Ordering::Relaxed);
                self.shared.memo.record_miss();
                group.push(tx);
            }
            None => {
                // Re-check the cache under the lock: the batcher memoizes
                // verdicts before removing their single-flight group, so a
                // miss observed before the lock may since have resolved —
                // without this, the image would be classified twice.
                if let Some(p_ad) = self.shared.memo.cached(key) {
                    stats.memo_hits.fetch_add(1, Ordering::Relaxed);
                    self.shared.memo.record_hit();
                    let _ = tx.send(self.verdict(p_ad, std::time::Duration::ZERO));
                } else {
                    self.shared.memo.record_miss();
                    state.waiters.insert(key, vec![tx]);
                    state.queue.push_back(QueuedImage { key, tensor });
                    self.shared.pending.fetch_add(1, Ordering::SeqCst);
                    self.shared.work_ready.notify_one();
                }
            }
        }
        VerdictTicket { rx }
    }

    /// Submits and blocks until the verdict is available — the synchronous
    /// API the in-critical-path hook and the tests use.
    pub fn submit_wait(&self, bitmap: &Bitmap) -> Prediction {
        self.submit(bitmap).wait()
    }

    /// Blocks until every queued or in-flight image has been resolved.
    pub fn flush(&self) {
        let mut state = self.shared.state.lock().expect("engine state");
        while self.shared.pending.load(Ordering::SeqCst) > 0 {
            state = self.shared.idle.wait(state).expect("engine idle wait");
        }
        drop(state);
    }

    fn verdict(&self, p_ad: f32, elapsed: std::time::Duration) -> Prediction {
        Prediction {
            p_ad,
            is_ad: p_ad >= self.shared.memo.classifier().threshold(),
            elapsed,
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("engine state");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

impl std::fmt::Debug for InferenceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceEngine")
            .field("max_batch", &self.shared.cfg.max_batch)
            .field("pending", &self.shared.pending.load(Ordering::Relaxed))
            .finish()
    }
}

fn batcher_main(shared: &Shared) {
    let classifier = shared.memo.classifier();
    let input_size = classifier.input_size();
    let threshold = classifier.threshold();
    let mut ws = Workspace::new();

    loop {
        // Collect the next micro-batch (blocking while the queue is empty).
        let batch: Vec<QueuedImage> = {
            let mut state = shared.state.lock().expect("engine state");
            loop {
                if !state.queue.is_empty() {
                    let take = shared.cfg.max_batch.min(state.queue.len());
                    break state.queue.drain(..take).collect();
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_ready.wait(state).expect("engine work wait");
            }
        };

        // Assemble the N x 4 x S x S tensor from the pre-preprocessed
        // samples (submitting threads did the resize + normalization).
        let n = batch.len();
        let started = Instant::now();
        let shape = Shape::new(n, crate::arch::INPUT_CHANNELS, input_size, input_size);
        let mut tensor = Tensor::from_vec(shape, ws.take(shape.count()));
        for (i, img) in batch.iter().enumerate() {
            tensor.copy_sample_from(i, &img.tensor, 0);
        }
        let probs = classifier.classify_tensor_with(&tensor, &mut ws);
        ws.recycle(tensor.into_vec());
        // Each verdict reports its amortized share of the batch's wall time,
        // so summing `Prediction::elapsed` over images approximates total
        // CNN time instead of multiply-counting the batch.
        let elapsed = started.elapsed() / n as u32;

        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .batched_images
            .fetch_add(n as u64, Ordering::Relaxed);
        shared
            .stats
            .max_batch
            .fetch_max(n as u64, Ordering::Relaxed);

        // Publish verdicts: memoize first, then resolve the single-flight
        // groups while holding the state lock so no submitter can observe a
        // removed group before the cache knows the answer.
        for (img, &p_ad) in batch.iter().zip(probs.iter()) {
            shared.memo.insert(img.key, p_ad);
        }
        {
            let mut state = shared.state.lock().expect("engine state");
            for (img, &p_ad) in batch.iter().zip(probs.iter()) {
                let pred = Prediction {
                    p_ad,
                    is_ad: p_ad >= threshold,
                    elapsed,
                };
                if let Some(group) = state.waiters.remove(&img.key) {
                    for waiter in group {
                        let _ = waiter.send(pred);
                    }
                }
            }
        }
        if shared.pending.fetch_sub(n, Ordering::SeqCst) == n {
            // The queue drained; wake anyone blocked in `flush`.
            let _guard = shared.state.lock().expect("engine state");
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::percival_net_slim;
    use percival_nn::init::kaiming_init;
    use percival_util::Pcg32;

    fn engine(max_batch: usize) -> InferenceEngine {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
        InferenceEngine::new(
            Classifier::new(model, 32),
            EngineConfig {
                max_batch,
                ..Default::default()
            },
        )
    }

    fn noisy_bitmap(seed: u64) -> Bitmap {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut b = Bitmap::new(16, 16, [0, 0, 0, 255]);
        for y in 0..16 {
            for x in 0..16 {
                b.set(
                    x,
                    y,
                    [rng.next_below(256) as u8, rng.next_below(256) as u8, 0, 255],
                );
            }
        }
        b
    }

    #[test]
    fn batched_predictions_match_direct_classification() {
        let eng = engine(8);
        for seed in 0..6 {
            let bmp = noisy_bitmap(seed);
            let batched = eng.submit_wait(&bmp);
            let direct = eng.classifier().classify(&bmp);
            assert!(
                (batched.p_ad - direct.p_ad).abs() < 1e-5,
                "seed {seed}: batched {} vs direct {}",
                batched.p_ad,
                direct.p_ad
            );
            assert_eq!(batched.is_ad, direct.is_ad);
        }
    }

    #[test]
    fn concurrent_distinct_submissions_coalesce_into_batches() {
        let eng = engine(8);
        let bitmaps: Vec<Bitmap> = (0..24).map(|i| noisy_bitmap(100 + i)).collect();
        std::thread::scope(|scope| {
            for bmp in &bitmaps {
                scope.spawn(|| {
                    let p = eng.submit_wait(bmp);
                    assert!((0.0..=1.0).contains(&p.p_ad));
                });
            }
        });
        assert_eq!(eng.stats().batched_images(), 24);
        assert!(
            eng.stats().batches() <= 24,
            "batches must not exceed submissions"
        );
        assert_eq!(eng.memo().len(), 24, "every verdict lands in the cache");
    }

    #[test]
    fn identical_inflight_submissions_run_single_flight() {
        let eng = engine(4);
        let bmp = noisy_bitmap(7);
        let verdicts: Vec<Prediction> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| scope.spawn(|| eng.submit_wait(&bmp)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("submitter"))
                .collect()
        });
        let p0 = verdicts[0].p_ad;
        assert!(verdicts.iter().all(|v| v.p_ad == p0), "one verdict for all");
        // Every submission beyond the unique content's first classification
        // was answered by the cache or the single-flight table, never by a
        // second CNN pass.
        let snap = eng.stats().snapshot();
        assert_eq!(snap.batched_images, 1, "exactly one CNN pass");
        assert_eq!(
            snap.memo_hits + snap.coalesced,
            15,
            "the other 15 submissions deduplicate"
        );
        assert_eq!(snap.submitted, 16);
        assert!((snap.dedup_rate - 15.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn int8_engine_serves_alongside_f32() {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
        let f32_eng =
            InferenceEngine::new(Classifier::new(model.clone(), 32), EngineConfig::default());
        let int8_eng = InferenceEngine::new(
            Classifier::new(model, 32),
            EngineConfig {
                precision: Precision::Int8,
                ..Default::default()
            },
        );
        assert_eq!(int8_eng.classifier().precision(), Precision::Int8);
        for seed in 0..4 {
            let bmp = noisy_bitmap(300 + seed);
            let a = f32_eng.submit_wait(&bmp);
            let b = int8_eng.submit_wait(&bmp);
            assert!(
                (a.p_ad - b.p_ad).abs() < 0.1,
                "seed {seed}: f32 {} vs int8 {}",
                a.p_ad,
                b.p_ad
            );
        }
    }

    #[test]
    fn cache_hits_skip_the_queue() {
        let eng = engine(8);
        let bmp = noisy_bitmap(3);
        eng.submit_wait(&bmp);
        let before = eng.stats().batched_images();
        let again = eng.submit_wait(&bmp);
        assert_eq!(eng.stats().batched_images(), before, "no second CNN pass");
        assert_eq!(again.elapsed, std::time::Duration::ZERO);
        assert!(eng.stats().memo_hits() >= 1);
    }

    #[test]
    fn flush_waits_for_fire_and_forget_submissions() {
        let eng = engine(8);
        let tickets: Vec<VerdictTicket> = (0..10)
            .map(|i| eng.submit(&noisy_bitmap(200 + i)))
            .collect();
        eng.flush();
        for t in tickets {
            assert!(t.poll().is_some(), "flush means every verdict is ready");
        }
        assert_eq!(eng.memo().len(), 10);
    }

    #[test]
    fn engine_shuts_down_cleanly_with_work_queued() {
        let eng = engine(8);
        let _ticket = eng.submit(&noisy_bitmap(42));
        drop(eng); // must not hang or panic
    }
}
