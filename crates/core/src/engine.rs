//! The batched inference engine: queue → micro-batch → pool → memo.
//!
//! PERCIVAL's low-latency deployment classifies images asynchronously and
//! memoizes verdicts (Section 1.1/6). This module is the throughput side of
//! that story: a submission queue accepts classification requests from any
//! thread (raster workers, crawlers, benchmarks), coalesces whatever is
//! pending into an `N x 4 x S x S` micro-batch, runs one batched forward
//! pass — which amortizes weight-panel packing and keeps the GEMM kernels
//! on wide tiles — and resolves every waiting request.
//!
//! The queue/memo/single-flight/publish protocol itself lives in the
//! shared flight-control core ([`crate::flight::FlightTable`]), which this
//! engine instantiates with the [`Fifo`] discipline — no deadline
//! configuration is dragged through the in-browser hook path. The engine
//! is a thin policy wrapper: one batcher thread, take-everything batch
//! formation, admit-everything gating. Two deduplication layers sit in
//! front of the CNN, both owned by the flight table:
//!
//! 1. the [`MemoizedClassifier`] LRU: verdicts for previously seen content
//!    hashes resolve immediately;
//! 2. the *single-flight* table: concurrent submissions of the same
//!    not-yet-classified creative share one queue slot and one CNN pass —
//!    the common case when an ad network serves one creative into many
//!    slots of the same page load.
//!
//! The synchronous API ([`InferenceEngine::submit_wait`]) keeps tests and
//! the in-critical-path deployment simple; [`InferenceEngine::submit`]
//! returns a ticket for callers that want fire-and-forget or deferred
//! pickup semantics.

use crate::classifier::{Classifier, Precision, Prediction, QuantScheme};
use crate::flight::{AdmissionHint, FlightCounters, FlightSnapshot, FlightTable};
use crate::flight::{Fifo, Formed, Gate};
use crate::memo::MemoizedClassifier;
use percival_imgcodec::{Bitmap, HashedBitmap};
use percival_nn::PlanProfile;
use percival_tensor::gemm_i8::scale_for_max;
use percival_tensor::ingest::{normalize_into, quantize_planar_from_u8};
use percival_tensor::workspace::with_thread_workspace;
use percival_tensor::{Shape, Tensor, Workspace};
use percival_util::telem::{self, StageKind};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Largest micro-batch assembled per forward pass. Bigger batches
    /// amortize packing further but add queueing latency to the first image
    /// of the batch; 8 is a good default for interactive rendering.
    pub max_batch: usize,
    /// Capacity of the memoized-verdict LRU shared with the hooks.
    pub cache_capacity: usize,
    /// Numeric precision of the served forward pass. [`Precision::Int8`]
    /// trades bounded logit drift for a substantially faster CNN; two
    /// engines over the same weights can serve f32 and int8 side by side.
    pub precision: Precision,
    /// Weight-quantization scheme applied when `precision` is
    /// [`Precision::Int8`] (ignored for f32 service).
    pub quant_scheme: QuantScheme,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 8,
            cache_capacity: 4096,
            precision: Precision::F32,
            quant_scheme: QuantScheme::PerTensor,
        }
    }
}

/// A plain-data copy of the engine counters at one instant. Since the
/// flight-control refactor this is the shared [`FlightSnapshot`] — the
/// engine and every serve shard speak one telemetry vocabulary (the
/// engine's FIFO never sheds, so its shed/degrade fields stay zero).
pub type EngineStatsSnapshot = FlightSnapshot;

struct EngineShared {
    table: FlightTable<Fifo, Prediction>,
    cfg: EngineConfig,
    shutdown: AtomicBool,
    /// Distinct images queued or mid-batch (drives [`InferenceEngine::flush`]).
    pending: AtomicUsize,
    signal: Mutex<()>,
    idle: Condvar,
}

/// A pending verdict returned by [`InferenceEngine::submit`].
pub struct VerdictTicket {
    rx: Receiver<Prediction>,
}

impl VerdictTicket {
    /// Blocks until the verdict is available.
    ///
    /// # Panics
    ///
    /// Panics if the engine shut down before resolving this request.
    pub fn wait(self) -> Prediction {
        self.rx
            .recv()
            .expect("inference engine dropped a pending request")
    }

    /// Returns the verdict if it is already available.
    pub fn poll(&self) -> Option<Prediction> {
        self.rx.try_recv().ok()
    }
}

/// The micro-batching classification service.
pub struct InferenceEngine {
    shared: Arc<EngineShared>,
    batcher: Option<JoinHandle<()>>,
}

impl InferenceEngine {
    /// Spawns an engine around a trained classifier, switching it to the
    /// configured [`EngineConfig::quant_scheme`] and
    /// [`EngineConfig::precision`] first (scheme before precision, so an
    /// int8 engine quantizes under the requested scheme straight away).
    pub fn new(classifier: Classifier, cfg: EngineConfig) -> Self {
        let classifier = classifier
            .with_quant_scheme(cfg.quant_scheme)
            .with_precision(cfg.precision);
        let memo = Arc::new(MemoizedClassifier::new(classifier, cfg.cache_capacity));
        Self::with_memo(memo, cfg)
    }

    /// Spawns an engine sharing an existing memoized classifier (cache
    /// misses flow through the batcher; hits never enter the queue). The
    /// wrapped classifier keeps its own precision here —
    /// [`EngineConfig::precision`] only applies when the engine owns
    /// classifier construction ([`InferenceEngine::new`]).
    pub fn with_memo(memo: Arc<MemoizedClassifier>, cfg: EngineConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let shared = Arc::new(EngineShared {
            table: FlightTable::new(memo),
            cfg,
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            signal: Mutex::new(()),
            idle: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("percival-batcher".into())
            .spawn(move || batcher_main(&worker_shared))
            .expect("spawn inference batcher");
        InferenceEngine {
            shared,
            batcher: Some(batcher),
        }
    }

    /// The shared verdict cache.
    pub fn memo(&self) -> &Arc<MemoizedClassifier> {
        self.shared.table.memo()
    }

    /// The wrapped classifier.
    pub fn classifier(&self) -> &Classifier {
        self.shared.table.memo().classifier()
    }

    /// Counter access (the flight table's wait-free counter block).
    pub fn stats(&self) -> &FlightCounters {
        self.shared.table.counters()
    }

    /// Submits one image for classification; returns immediately.
    ///
    /// Cache hits resolve the ticket before this call returns. Otherwise
    /// the image joins (or creates) its single-flight group and the verdict
    /// arrives once its micro-batch has run.
    pub fn submit(&self, bitmap: &Bitmap) -> VerdictTicket {
        self.submit_with_key(&bitmap.hashed())
    }

    /// Keyed submission: like [`InferenceEngine::submit`] but over a
    /// [`HashedBitmap`], whose content hash was computed once at
    /// construction — hint-then-submit callers stop hashing every image
    /// twice, and because the key is derived privately inside the wrapper,
    /// a caller still cannot publish a verdict under a key that does not
    /// match the pixels (which would poison the shared memo).
    pub fn submit_with_key(&self, img: &HashedBitmap<'_>) -> VerdictTicket {
        let (tx, rx) = channel();
        let shared = &self.shared;
        let classifier = shared.table.memo().classifier();
        let threshold = classifier.threshold();
        let input_size = classifier.input_size();
        shared.table.submit(
            img.key(),
            (),
            tx,
            |p_ad| Prediction::from_probability(p_ad, threshold, Duration::ZERO),
            // The submitting thread does the u8-domain resize only; the
            // batcher normalizes (or quantizes) straight into the batch
            // buffer at formation time. Sampled requests report the resize
            // as a Preprocess span (the hook registers the key first).
            || {
                let start = telem::is_sampled(img.key()).then(telem::now_ns);
                let sample =
                    with_thread_workspace(|ws| Classifier::resize_to(img.bitmap(), input_size, ws));
                if let Some(start) = start {
                    let dur = telem::now_ns().saturating_sub(start);
                    telem::emit(img.key(), StageKind::Preprocess, start, dur);
                }
                sample
            },
            // The FIFO engine admits everything: overload policy belongs to
            // the serving layer.
            |_depth, _prio| Gate::Admit,
            |_depth, _prio| {
                shared.pending.fetch_add(1, Ordering::SeqCst);
            },
        );
        VerdictTicket { rx }
    }

    /// Submits and blocks until the verdict is available — the synchronous
    /// API the in-critical-path hook and the tests use.
    pub fn submit_wait(&self, bitmap: &Bitmap) -> Prediction {
        self.submit(bitmap).wait()
    }

    /// A cheap admission probe for renderer-side feedback: either the
    /// memoized verdict, or [`AdmissionHint::Admit`] — the FIFO engine
    /// never sheds, so a submission is always worthwhile. Deliberately a
    /// plain memo-cache lookup (one short-held cache mutex) rather than a
    /// full [`FlightTable::probe`]: the hint only acts on `Cached`, and
    /// the render critical path should not additionally contend on the
    /// flight-table state lock to learn a distinction (in-flight vs
    /// queueable) it would discard.
    pub fn admission_hint(&self, bitmap: &Bitmap) -> AdmissionHint<Prediction> {
        self.admission_hint_with_key(&bitmap.hashed())
    }

    /// [`InferenceEngine::admission_hint`] over a pre-hashed bitmap, so a
    /// hook that goes on to submit shares one hash computation between the
    /// probe and [`InferenceEngine::submit_with_key`].
    pub fn admission_hint_with_key(&self, img: &HashedBitmap<'_>) -> AdmissionHint<Prediction> {
        match self.shared.table.memo().cached(img.key()) {
            Some(p_ad) => AdmissionHint::Cached(Prediction::from_probability(
                p_ad,
                self.classifier().threshold(),
                Duration::ZERO,
            )),
            None => AdmissionHint::Admit,
        }
    }

    /// Blocks until every queued or in-flight image has been resolved.
    pub fn flush(&self) {
        let mut guard = self.shared.signal.lock().expect("engine signal");
        while self.shared.pending.load(Ordering::SeqCst) > 0 {
            guard = self.shared.idle.wait(guard).expect("engine idle wait");
        }
        drop(guard);
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.table.wake_all();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

impl std::fmt::Debug for InferenceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceEngine")
            .field("max_batch", &self.shared.cfg.max_batch)
            .field("pending", &self.shared.pending.load(Ordering::Relaxed))
            .finish()
    }
}

fn batcher_main(shared: &EngineShared) {
    let classifier = shared.table.memo().classifier();
    let input_size = classifier.input_size();
    let threshold = classifier.threshold();
    let int8 = classifier.precision() == Precision::Int8;
    let per_sample = crate::arch::INPUT_CHANNELS * input_size * input_size;
    let mut ws = Workspace::new();

    // `wait_for_work` keeps returning work until the queue is empty *and*
    // shutdown has been requested, so queued submissions are drained even
    // when the engine is dropped mid-load.
    while shared
        .table
        .wait_for_work(|| shared.shutdown.load(Ordering::SeqCst))
    {
        // FIFO formation policy: take everything up to max_batch.
        let formation_started = Instant::now();
        let formed = shared
            .table
            .form_batch(shared.cfg.max_batch, |e, _ctx| Formed::Keep(e));
        let batch = formed.batch;
        if batch.is_empty() {
            continue;
        }

        // True queue-wait accounting: per entry, push → formation — the
        // honest counterpart to `Prediction::elapsed`'s amortized share.
        let n = batch.len();
        let counters = shared.table.counters();
        let tracing = telem::enabled();
        let mut sampled: Vec<u64> = Vec::new();
        for img in &batch {
            let wait_ns = img.enqueued_at.elapsed().as_nanos() as u64;
            counters.note_queue_wait(wait_ns);
            if tracing && telem::is_sampled(img.key) {
                let now = telem::now_ns();
                telem::emit(
                    img.key,
                    StageKind::QueueWait,
                    now.saturating_sub(wait_ns),
                    wait_ns,
                );
                sampled.push(img.key);
            }
        }

        // Form the batch input straight from the queued u8 samples: the
        // f32 tier normalizes each sample into its window of the batch
        // tensor; the int8 tier quantizes each sample's bytes directly to
        // the GEMM's i8 input domain (the f32 plane never exists). Either
        // way the old preprocess-then-copy assembly pass is gone.
        let mut qdata: Vec<i8> = Vec::new();
        let mut maxes: Vec<f32> = Vec::new();
        let mut tensor: Option<Tensor> = None;
        if int8 {
            qdata = ws.take_i8(n * per_sample);
            maxes = ws.take(n);
            for (i, img) in batch.iter().enumerate() {
                maxes[i] = img.sample.max_abs();
                quantize_planar_from_u8(
                    img.sample.data(),
                    input_size,
                    scale_for_max(maxes[i]),
                    &mut qdata[i * per_sample..(i + 1) * per_sample],
                );
            }
        } else {
            let shape = Shape::new(n, crate::arch::INPUT_CHANNELS, input_size, input_size);
            let mut t = Tensor::from_vec(shape, ws.take(shape.count()));
            for (i, img) in batch.iter().enumerate() {
                normalize_into(img.sample.data(), input_size, t.sample_mut(i));
            }
            tensor = Some(t);
        }
        let started = Instant::now();
        if !sampled.is_empty() {
            let form_ns = (started - formation_started).as_nanos() as u64;
            let now = telem::now_ns();
            for &key in &sampled {
                telem::emit(
                    key,
                    StageKind::BatchForm,
                    now.saturating_sub(form_ns),
                    form_ns,
                );
            }
        }
        let probs = if sampled.is_empty() {
            match &tensor {
                Some(t) => classifier.classify_tensor_with(t, &mut ws),
                None => classifier.classify_quantized_with(&qdata, &maxes, &mut ws),
            }
        } else {
            // A sampled member rides this batch: run observed and lay the
            // per-op totals out as a sequential PlanOp timeline from the
            // classify start (exact on one band; whole-batch per-op cost
            // attributed to each sampled request either way).
            let profile = PlanProfile::new();
            let classify_start = telem::now_ns();
            let probs = match &tensor {
                Some(t) => classifier.classify_tensor_observed(t, &mut ws, &profile),
                None => classifier.classify_quantized_observed(&qdata, &maxes, &mut ws, &profile),
            };
            for &key in &sampled {
                let mut cursor = classify_start;
                for stat in profile.report() {
                    telem::emit(
                        key,
                        StageKind::PlanOp {
                            index: stat.index as u8,
                            kind: stat.kind,
                        },
                        cursor,
                        stat.total_ns,
                    );
                    cursor += stat.total_ns;
                }
            }
            probs
        };
        if let Some(t) = tensor {
            ws.recycle(t.into_vec());
        } else {
            ws.recycle_i8(qdata);
            ws.recycle(maxes);
        }
        // Each verdict reports its amortized share of the batch's wall time
        // (see `Prediction::elapsed`); the true per-batch cost goes to the
        // `service_ns` counter below.
        let elapsed = started.elapsed() / n as u32;

        let verdicts: Vec<(u64, f32)> = batch
            .iter()
            .zip(probs.iter())
            .map(|(img, &p_ad)| (img.key, p_ad))
            .collect();
        // The queued byte samples are done; return them to the free list
        // so steady-state submission -> formation cycles stay allocation
        // free on the batcher side.
        for img in batch {
            ws.recycle_u8(img.sample.into_data());
        }
        let publish_start = tracing.then(telem::now_ns);
        let mut finished: Vec<(u64, u64)> = Vec::new();
        shared.table.publish(
            &verdicts,
            |_key, p_ad| Prediction::from_probability(p_ad, threshold, elapsed),
            |key| {
                if tracing {
                    if let Some(start_ns) = telem::complete(key) {
                        finished.push((key, start_ns));
                    }
                }
            },
        );
        if let Some(publish_start) = publish_start {
            let publish_ns = telem::now_ns().saturating_sub(publish_start);
            for &key in &sampled {
                telem::emit(key, StageKind::Publish, publish_start, publish_ns);
            }
            for (key, start_ns) in finished {
                let end = telem::now_ns();
                telem::emit(
                    key,
                    StageKind::EndToEnd,
                    start_ns,
                    end.saturating_sub(start_ns),
                );
            }
        }
        counters.note_service(formation_started.elapsed().as_nanos() as u64);
        if shared.pending.fetch_sub(n, Ordering::SeqCst) == n {
            // The queue drained; wake anyone blocked in `flush`.
            let _guard = shared.signal.lock().expect("engine signal");
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::percival_net_slim;
    use percival_nn::init::kaiming_init;
    use percival_util::Pcg32;

    fn engine(max_batch: usize) -> InferenceEngine {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
        InferenceEngine::new(
            Classifier::new(model, 32),
            EngineConfig {
                max_batch,
                ..Default::default()
            },
        )
    }

    fn noisy_bitmap(seed: u64) -> Bitmap {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut b = Bitmap::new(16, 16, [0, 0, 0, 255]);
        for y in 0..16 {
            for x in 0..16 {
                b.set(
                    x,
                    y,
                    [rng.next_below(256) as u8, rng.next_below(256) as u8, 0, 255],
                );
            }
        }
        b
    }

    // The cross-layer protocol suite (hot-key hammering, flush/shutdown
    // draining, single-flight accounting) lives in the shared harness at
    // crates/serve/tests/flight_protocol.rs and runs against this engine
    // and the sharded service from one test body. The tests below cover
    // engine-specific behavior only.

    #[test]
    fn batched_predictions_match_direct_classification() {
        let eng = engine(8);
        for seed in 0..6 {
            let bmp = noisy_bitmap(seed);
            let batched = eng.submit_wait(&bmp);
            let direct = eng.classifier().classify(&bmp);
            assert!(
                (batched.p_ad - direct.p_ad).abs() < 1e-5,
                "seed {seed}: batched {} vs direct {}",
                batched.p_ad,
                direct.p_ad
            );
            assert_eq!(batched.is_ad, direct.is_ad);
        }
    }

    #[test]
    fn concurrent_distinct_submissions_coalesce_into_batches() {
        let eng = engine(8);
        let bitmaps: Vec<Bitmap> = (0..24).map(|i| noisy_bitmap(100 + i)).collect();
        std::thread::scope(|scope| {
            for bmp in &bitmaps {
                scope.spawn(|| {
                    let p = eng.submit_wait(bmp);
                    assert!((0.0..=1.0).contains(&p.p_ad));
                });
            }
        });
        assert_eq!(eng.stats().batched_images(), 24);
        assert!(
            eng.stats().batches() <= 24,
            "batches must not exceed submissions"
        );
        assert_eq!(eng.memo().len(), 24, "every verdict lands in the cache");
    }

    #[test]
    fn int8_engine_serves_alongside_f32() {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
        let f32_eng =
            InferenceEngine::new(Classifier::new(model.clone(), 32), EngineConfig::default());
        let int8_eng = InferenceEngine::new(
            Classifier::new(model, 32),
            EngineConfig {
                precision: Precision::Int8,
                ..Default::default()
            },
        );
        assert_eq!(int8_eng.classifier().precision(), Precision::Int8);
        for seed in 0..4 {
            let bmp = noisy_bitmap(300 + seed);
            let a = f32_eng.submit_wait(&bmp);
            let b = int8_eng.submit_wait(&bmp);
            assert!(
                (a.p_ad - b.p_ad).abs() < 0.1,
                "seed {seed}: f32 {} vs int8 {}",
                a.p_ad,
                b.p_ad
            );
        }
    }

    #[test]
    fn engine_config_selects_quant_scheme() {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(11));
        let eng = InferenceEngine::new(
            Classifier::new(model, 32),
            EngineConfig {
                precision: Precision::Int8,
                quant_scheme: QuantScheme::PerChannel,
                ..Default::default()
            },
        );
        assert_eq!(eng.classifier().precision(), Precision::Int8);
        assert_eq!(eng.classifier().quant_scheme(), QuantScheme::PerChannel);
        let p = eng.submit_wait(&noisy_bitmap(500));
        assert!((0.0..=1.0).contains(&p.p_ad));
    }

    #[test]
    fn queue_wait_and_service_counters_accumulate_true_times() {
        let eng = engine(8);
        for seed in 0..4 {
            eng.submit_wait(&noisy_bitmap(700 + seed));
        }
        let snap = eng.stats().snapshot();
        // Four entries crossed the queue and four batches ran: both totals
        // are real wall times, not amortized shares, so they are non-zero
        // and service dominates wait on an idle engine.
        assert!(snap.queue_wait_ns > 0, "per-entry push -> formation wait");
        assert!(snap.service_ns > 0, "per-batch formation -> publish time");
        assert_eq!(snap.batched_images, 4);
    }

    #[test]
    fn cache_hits_skip_the_queue() {
        let eng = engine(8);
        let bmp = noisy_bitmap(3);
        eng.submit_wait(&bmp);
        let before = eng.stats().batched_images();
        let again = eng.submit_wait(&bmp);
        assert_eq!(eng.stats().batched_images(), before, "no second CNN pass");
        assert_eq!(again.elapsed, std::time::Duration::ZERO);
        assert!(eng.stats().memo_hits() >= 1);
    }

    #[test]
    fn keyed_submission_shares_one_hash_with_the_hint_path() {
        let eng = engine(8);
        let bmp = noisy_bitmap(40);
        let img = bmp.hashed();
        assert_eq!(img.key(), bmp.content_hash());
        assert_eq!(eng.admission_hint_with_key(&img), AdmissionHint::Admit);
        let first = eng.submit_with_key(&img).wait();
        // The keyed and plain APIs address the same single-flight group and
        // memo entry: the second sighting is a pure cache hit.
        let again = eng.submit_wait(&bmp);
        assert_eq!(first.p_ad, again.p_ad);
        assert_eq!(eng.stats().batched_images(), 1, "one CNN pass");
        match eng.admission_hint_with_key(&img) {
            AdmissionHint::Cached(cached) => assert_eq!(cached.p_ad, first.p_ad),
            other => panic!("expected a cached hint, got {other:?}"),
        }
    }

    #[test]
    fn admission_hint_reports_cached_verdicts_and_admits_the_rest() {
        let eng = engine(8);
        let bmp = noisy_bitmap(21);
        assert_eq!(eng.admission_hint(&bmp), AdmissionHint::Admit);
        let pred = eng.submit_wait(&bmp);
        match eng.admission_hint(&bmp) {
            AdmissionHint::Cached(cached) => {
                assert_eq!(cached.p_ad, pred.p_ad);
                assert_eq!(cached.is_ad, pred.is_ad);
            }
            other => panic!("expected a cached hint, got {other:?}"),
        }
        // The hint never counts as a submission.
        assert_eq!(eng.stats().submitted(), 1);
    }
}
