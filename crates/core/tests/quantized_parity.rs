//! Int8-vs-f32 parity: the quantized execution path must agree with full
//! precision on essentially every verdict.
//!
//! The acceptance bar for shipping the int8 path is behavioral, not just
//! numeric: on a synthetic eval set (the same webgen distribution the
//! training recipe uses), verdict agreement must be at least 99% and the
//! probability drift bounded. CI runs this under `--release` so the numbers
//! reflect the optimized kernels that actually serve traffic.

use percival_core::train::{train, TrainConfig};
use percival_core::{Classifier, Precision};
use percival_imgcodec::Bitmap;
use percival_nn::StepLr;
use percival_webgen::profile::{build_balanced_dataset, DatasetProfile};
use percival_webgen::Script;

/// Trains a small classifier on the synthetic balanced dataset so verdicts
/// are confident rather than coin flips around the threshold.
fn trained_classifier() -> Classifier {
    let ds = build_balanced_dataset(23, DatasetProfile::Alexa, Script::Latin, 32, 40);
    let bitmaps: Vec<Bitmap> = ds.iter().map(|s| s.bitmap.clone()).collect();
    let labels: Vec<bool> = ds.iter().map(|s| s.is_ad).collect();
    let cfg = TrainConfig {
        input_size: 32,
        width_divisor: 4,
        epochs: 8,
        batch_size: 16,
        schedule: StepLr {
            base: 0.02,
            gamma: 0.1,
            every: 30,
        },
        ..Default::default()
    };
    train(&bitmaps, &labels, &cfg).classifier
}

#[test]
fn int8_verdicts_agree_with_f32_on_synthetic_eval_set() {
    let f32_cls = trained_classifier();
    let int8_cls = f32_cls.clone().with_precision(Precision::Int8);

    // A held-out synthetic eval set (different seed than training).
    let eval = build_balanced_dataset(97, DatasetProfile::Alexa, Script::Latin, 32, 60);
    assert!(eval.len() >= 100, "eval set too small: {}", eval.len());

    let mut agree = 0usize;
    let mut max_drift = 0.0f32;
    for sample in &eval {
        let a = f32_cls.classify(&sample.bitmap);
        let b = int8_cls.classify(&sample.bitmap);
        if a.is_ad == b.is_ad {
            agree += 1;
        }
        max_drift = max_drift.max((a.p_ad - b.p_ad).abs());
    }
    let agreement = agree as f64 / eval.len() as f64;
    assert!(
        agreement >= 0.99,
        "int8 verdict agreement {agreement:.4} below 0.99 ({agree}/{})",
        eval.len()
    );
    // Per-tensor symmetric quantization through an 11-conv network stays
    // within a few percent of probability mass on this model family.
    assert!(
        max_drift < 0.2,
        "worst-case P(ad) drift {max_drift} exceeds the logit-drift bound"
    );
}

#[test]
fn int8_model_is_deterministic() {
    let cls = trained_classifier().with_precision(Precision::Int8);
    let eval = build_balanced_dataset(5, DatasetProfile::Alexa, Script::Latin, 32, 4);
    for sample in &eval {
        let first = cls.classify(&sample.bitmap).p_ad;
        for _ in 0..3 {
            assert_eq!(cls.classify(&sample.bitmap).p_ad, first);
        }
    }
}
