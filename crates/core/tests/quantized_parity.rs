//! Int8-vs-f32 parity and execution-plan parity (fusion, prepacking,
//! pipelining, kernel tiers).
//!
//! The acceptance bar for shipping the int8 path is behavioral, not just
//! numeric: on a synthetic eval set (the same webgen distribution the
//! training recipe uses), verdict agreement must be at least 99% and the
//! probability drift bounded. The execution-plan refactor adds a second
//! bar: the *fused* plans (activation/requantize epilogues, quantize-on-
//! the-fly packing) must match the unfused reference plans — bitwise on
//! the f32 tier, ≥ 99% verdict agreement on the int8 tier — and verdicts
//! must stay batch-invariant so flight-table memoization remains sound.
//! The prepack/pipeline optimizations add a third: compile-time weight
//! panels must be bitwise-neutral (and actually eliminate per-call weight
//! packing — asserted on the workspace pack counter), pipelined runs must
//! match their sequential references, and every int8 kernel tier
//! (portable, AVX2, VNNI) that the host can run must produce identical
//! logits. The fused ingest path adds a fourth: the u8-domain
//! resize-then-normalize pipeline must agree with the full-resolution f32
//! reference on ≥ 99.9% of verdicts over a large random-creative sweep,
//! formation-time `preprocess_into` writes must be bitwise-equal to the
//! old preprocess-then-copy assembly, and a warm submit → formation →
//! recycle cycle must be allocation-free. CI runs this under `--release`
//! so the numbers reflect the optimized kernels that actually serve
//! traffic.

use percival_core::arch::INPUT_CHANNELS;
use percival_core::train::{train, TrainConfig};
use percival_core::{Classifier, Precision};
use percival_imgcodec::Bitmap;
use percival_nn::{ExecPlan, QuantizedSequential, StepLr};
use percival_tensor::activation::softmax;
use percival_tensor::gemm_i8::scale_for_max;
use percival_tensor::ingest::{normalize_into, quantize_planar_from_u8};
use percival_tensor::{
    set_i8_tier_override, simd_available, vnni_available, I8Tier, Shape, Tensor, Workspace,
};
use percival_util::Pcg32;
use percival_webgen::profile::{build_balanced_dataset, DatasetProfile};
use percival_webgen::Script;

/// Trains a small classifier on the synthetic balanced dataset so verdicts
/// are confident rather than coin flips around the threshold.
fn trained_classifier() -> Classifier {
    let ds = build_balanced_dataset(23, DatasetProfile::Alexa, Script::Latin, 32, 40);
    let bitmaps: Vec<Bitmap> = ds.iter().map(|s| s.bitmap.clone()).collect();
    let labels: Vec<bool> = ds.iter().map(|s| s.is_ad).collect();
    let cfg = TrainConfig {
        input_size: 32,
        width_divisor: 4,
        epochs: 8,
        batch_size: 16,
        schedule: StepLr {
            base: 0.02,
            gamma: 0.1,
            every: 30,
        },
        ..Default::default()
    };
    train(&bitmaps, &labels, &cfg).classifier
}

#[test]
fn int8_verdicts_agree_with_f32_on_synthetic_eval_set() {
    let f32_cls = trained_classifier();
    let int8_cls = f32_cls.clone().with_precision(Precision::Int8);

    // A held-out synthetic eval set (different seed than training).
    let eval = build_balanced_dataset(97, DatasetProfile::Alexa, Script::Latin, 32, 60);
    assert!(eval.len() >= 100, "eval set too small: {}", eval.len());

    let mut agree = 0usize;
    let mut max_drift = 0.0f32;
    for sample in &eval {
        let a = f32_cls.classify(&sample.bitmap);
        let b = int8_cls.classify(&sample.bitmap);
        if a.is_ad == b.is_ad {
            agree += 1;
        }
        max_drift = max_drift.max((a.p_ad - b.p_ad).abs());
    }
    let agreement = agree as f64 / eval.len() as f64;
    assert!(
        agreement >= 0.99,
        "int8 verdict agreement {agreement:.4} below 0.99 ({agree}/{})",
        eval.len()
    );
    // Per-tensor symmetric quantization through an 11-conv network stays
    // within a few percent of probability mass on this model family.
    assert!(
        max_drift < 0.2,
        "worst-case P(ad) drift {max_drift} exceeds the logit-drift bound"
    );
}

#[test]
fn fused_f32_logits_are_bitwise_equal_to_unfused() {
    let cls = trained_classifier();
    let model = cls.model();
    let fused = ExecPlan::compile(model);
    let unfused = ExecPlan::compile_unfused(model);
    assert!(fused.is_fused() && !unfused.is_fused());

    let eval = build_balanced_dataset(41, DatasetProfile::Alexa, Script::Latin, 32, 20);
    let mut ws = Workspace::new();
    for sample in &eval {
        let input = Classifier::preprocess(&sample.bitmap, cls.input_size());
        let a = fused.run_f32(model, input.shape(), input.as_slice(), &mut ws);
        let b = unfused.run_f32(model, input.shape(), input.as_slice(), &mut ws);
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "f32 epilogue fusion must be bitwise-neutral"
        );
    }
}

#[test]
fn fused_int8_verdicts_agree_with_unfused_int8() {
    let cls = trained_classifier();
    let model = cls.model();
    let q = QuantizedSequential::from_model(model);
    let fused = ExecPlan::compile(model);
    let unfused = ExecPlan::compile_unfused(model);

    let eval = build_balanced_dataset(43, DatasetProfile::Alexa, Script::Latin, 32, 60);
    assert!(eval.len() >= 100, "eval set too small: {}", eval.len());
    let mut ws = Workspace::new();
    let mut agree = 0usize;
    let mut max_drift = 0.0f32;
    for sample in &eval {
        let input = Classifier::preprocess(&sample.bitmap, cls.input_size());
        let a = softmax(&fused.run_i8(&q, input.shape(), input.as_slice(), &mut ws));
        let b = softmax(&unfused.run_i8(&q, input.shape(), input.as_slice(), &mut ws));
        let (pa, pb) = (a.at(0, 1, 0, 0), b.at(0, 1, 0, 0));
        if (pa >= 0.5) == (pb >= 0.5) {
            agree += 1;
        }
        max_drift = max_drift.max((pa - pb).abs());
    }
    let agreement = agree as f64 / eval.len() as f64;
    assert!(
        agreement >= 0.99,
        "fused int8 verdict agreement {agreement:.4} below 0.99"
    );
    // With per-tensor scales and exact tracked maxes, fusion is a pure
    // reordering of the same integer arithmetic — so drift should in fact
    // be zero; the bound guards any future epilogue change.
    assert!(
        max_drift < 0.02,
        "fused-vs-unfused int8 drift {max_drift} is not small"
    );
}

#[test]
fn fused_verdicts_are_batch_invariant() {
    // Memoized verdicts must not depend on micro-batch composition, or the
    // flight table could publish different answers for the same key. Run
    // each eval image alone and inside a mixed batch through the fused
    // classifier on both tiers.
    let f32_cls = trained_classifier();
    let int8_cls = f32_cls.clone().with_precision(Precision::Int8);
    let eval = build_balanced_dataset(47, DatasetProfile::Alexa, Script::Latin, 32, 8);
    for cls in [&f32_cls, &int8_cls] {
        let mut batch = percival_tensor::Tensor::zeros(percival_tensor::Shape::new(
            eval.len(),
            4,
            cls.input_size(),
            cls.input_size(),
        ));
        for (i, sample) in eval.iter().enumerate() {
            let t = Classifier::preprocess(&sample.bitmap, cls.input_size());
            batch.copy_sample_from(i, &t, 0);
        }
        let batched = cls.classify_tensor(&batch);
        for (i, sample) in eval.iter().enumerate() {
            let single = cls.classify(&sample.bitmap);
            assert_eq!(
                batched[i], single.p_ad,
                "sample {i}: fused verdicts must be batch-invariant"
            );
        }
    }
}

#[test]
fn per_channel_int8_tracks_f32_at_least_as_well_as_per_tensor() {
    let cls = trained_classifier();
    let model = cls.model();
    let per_tensor = QuantizedSequential::from_model(model);
    let per_channel = QuantizedSequential::from_model_per_channel(model);
    let plan = ExecPlan::compile(model);

    let eval = build_balanced_dataset(53, DatasetProfile::Alexa, Script::Latin, 32, 30);
    let mut ws = Workspace::new();
    let (mut drift_t, mut drift_c) = (0.0f64, 0.0f64);
    for sample in &eval {
        let input = Classifier::preprocess(&sample.bitmap, cls.input_size());
        let f = softmax(&plan.run_f32(model, input.shape(), input.as_slice(), &mut ws));
        let t = softmax(&plan.run_i8(&per_tensor, input.shape(), input.as_slice(), &mut ws));
        let c = softmax(&plan.run_i8(&per_channel, input.shape(), input.as_slice(), &mut ws));
        let p_f = f.at(0, 1, 0, 0);
        drift_t += f64::from((t.at(0, 1, 0, 0) - p_f).abs());
        drift_c += f64::from((c.at(0, 1, 0, 0) - p_f).abs());
    }
    // Per-channel scales can only tighten the weight representation; allow
    // a whisker of slack for rounding luck on individual images.
    assert!(
        drift_c <= drift_t * 1.10 + 1e-3,
        "per-channel mean drift {drift_c} worse than per-tensor {drift_t}"
    );
}

/// Restores the global int8 tier override even when an assertion unwinds,
/// so one failing tier test cannot poison the others.
struct TierGuard;

impl Drop for TierGuard {
    fn drop(&mut self) {
        set_i8_tier_override(None);
    }
}

#[test]
fn prepacked_plans_are_bitwise_equal_to_per_call_packing() {
    let cls = trained_classifier();
    let model = cls.model();
    let q = QuantizedSequential::from_model(model);
    let mut packed = ExecPlan::compile(model);
    packed.attach_quantized(&q);
    let (n_f32, n_i8) = packed.prepacked();
    assert!(
        n_f32 > 0 && n_f32 == n_i8,
        "both arenas must carry one panel set per conv, got ({n_f32}, {n_i8})"
    );
    let unpacked = ExecPlan::compile_unpacked(model);
    assert_eq!(unpacked.prepacked(), (0, 0));

    let eval = build_balanced_dataset(59, DatasetProfile::Alexa, Script::Latin, 32, 10);
    let mut ws = Workspace::new();
    for sample in &eval {
        let input = Classifier::preprocess(&sample.bitmap, cls.input_size());
        assert_eq!(
            packed
                .run_f32(model, input.shape(), input.as_slice(), &mut ws)
                .as_slice(),
            unpacked
                .run_f32(model, input.shape(), input.as_slice(), &mut ws)
                .as_slice(),
            "f32 prepacking must be bitwise-neutral"
        );
        assert_eq!(
            packed
                .run_i8(&q, input.shape(), input.as_slice(), &mut ws)
                .as_slice(),
            unpacked
                .run_i8(&q, input.shape(), input.as_slice(), &mut ws)
                .as_slice(),
            "int8 prepacking must be bitwise-neutral"
        );
    }
}

#[test]
fn prepacked_plan_eliminates_per_call_weight_packing() {
    let cls = trained_classifier();
    let model = cls.model();
    let q = QuantizedSequential::from_model(model);
    let input = Classifier::preprocess(
        &build_balanced_dataset(61, DatasetProfile::Alexa, Script::Latin, 32, 2)[0].bitmap,
        cls.input_size(),
    );

    // Reference: the per-call plan really does pack weight panels on this
    // real geometry (the early convs sit far above the skip-packing
    // threshold), so the counter is live.
    let unpacked = ExecPlan::compile_unpacked(model);
    let mut ws = Workspace::new();
    unpacked.run_i8_sequential(&q, input.shape(), input.as_slice(), &mut ws);
    assert!(
        ws.stats().weight_packs > 0,
        "per-call plan must exercise the weight-pack counter"
    );

    // The prepacked plan must never touch it — this is the "no per-call
    // weight packing on any conv in the fused plan path" guarantee.
    let mut packed = ExecPlan::compile(model);
    packed.attach_quantized(&q);
    let mut ws = Workspace::new();
    packed.run_f32_sequential(model, input.shape(), input.as_slice(), &mut ws);
    packed.run_i8_sequential(&q, input.shape(), input.as_slice(), &mut ws);
    assert_eq!(
        ws.stats().weight_packs,
        0,
        "prepacked plan performed per-call weight packing"
    );
}

#[test]
fn pipelined_runs_match_sequential_references() {
    let cls = trained_classifier();
    let model = cls.model();
    let q = QuantizedSequential::from_model(model);
    let mut plan = ExecPlan::compile(model);
    plan.attach_quantized(&q);

    let eval = build_balanced_dataset(67, DatasetProfile::Alexa, Script::Latin, 32, 20);
    let mut ws = Workspace::new();
    let mut agree = 0usize;
    let mut total = 0usize;
    for sample in &eval {
        let input = Classifier::preprocess(&sample.bitmap, cls.input_size());
        // f32: pipelining only reorders independent disjoint writes, so
        // the bar is bitwise.
        assert_eq!(
            plan.run_f32(model, input.shape(), input.as_slice(), &mut ws)
                .as_slice(),
            plan.run_f32_sequential(model, input.shape(), input.as_slice(), &mut ws)
                .as_slice(),
            "pipelined f32 must be bitwise-equal to sequential"
        );
        // int8: the acceptance bar is ≥ 99% verdict agreement (in practice
        // the runs are bitwise-identical too — same per-sample kernels).
        let a = softmax(&plan.run_i8(&q, input.shape(), input.as_slice(), &mut ws));
        let b = softmax(&plan.run_i8_sequential(&q, input.shape(), input.as_slice(), &mut ws));
        let (pa, pb) = (a.at(0, 1, 0, 0), b.at(0, 1, 0, 0));
        if (pa >= 0.5) == (pb >= 0.5) {
            agree += 1;
        }
        total += 1;
        assert!(
            (pa - pb).abs() < 0.02,
            "pipelined int8 P(ad) {pa} drifted from sequential {pb}"
        );
    }
    assert!(
        agree as f64 / total as f64 >= 0.99,
        "pipelined int8 verdict agreement {agree}/{total} below 0.99"
    );
}

#[test]
fn int8_kernel_tiers_produce_identical_logits() {
    let _guard = TierGuard;
    let cls = trained_classifier();
    let model = cls.model();
    let q = QuantizedSequential::from_model(model);
    let mut plan = ExecPlan::compile(model);
    plan.attach_quantized(&q);

    let mut tiers = vec![I8Tier::Portable];
    if simd_available() {
        tiers.push(I8Tier::Avx2);
    }
    if vnni_available() {
        tiers.push(I8Tier::Vnni);
    }

    let eval = build_balanced_dataset(71, DatasetProfile::Alexa, Script::Latin, 32, 10);
    let mut ws = Workspace::new();
    for sample in &eval {
        let input = Classifier::preprocess(&sample.bitmap, cls.input_size());
        set_i8_tier_override(Some(I8Tier::Portable));
        let reference = plan.run_i8(&q, input.shape(), input.as_slice(), &mut ws);
        for &tier in &tiers[1..] {
            set_i8_tier_override(Some(tier));
            let got = plan.run_i8(&q, input.shape(), input.as_slice(), &mut ws);
            // The VNNI signedness correction and the AVX2 pair kernel are
            // exact integer arithmetic: every tier must agree bit for bit.
            assert_eq!(
                got.as_slice(),
                reference.as_slice(),
                "{tier:?} logits diverge from the portable tier"
            );
        }
    }
    set_i8_tier_override(None);
}

#[test]
fn int8_model_is_deterministic() {
    let cls = trained_classifier().with_precision(Precision::Int8);
    let eval = build_balanced_dataset(5, DatasetProfile::Alexa, Script::Latin, 32, 4);
    for sample in &eval {
        let first = cls.classify(&sample.bitmap).p_ad;
        for _ in 0..3 {
            assert_eq!(cls.classify(&sample.bitmap).p_ad, first);
        }
    }
}

/// Random-noise creative at an arbitrary geometry — the worst case for the
/// fixed-point resampler, since there are no smooth gradients to hide
/// rounding in.
fn noisy_bitmap(w: usize, h: usize, rng: &mut Pcg32) -> Bitmap {
    let mut b = Bitmap::new(w, h, [0, 0, 0, 255]);
    for y in 0..h {
        for x in 0..w {
            b.set(
                x,
                y,
                [
                    rng.next_below(256) as u8,
                    rng.next_below(256) as u8,
                    rng.next_below(256) as u8,
                    rng.next_below(256) as u8,
                ],
            );
        }
    }
    b
}

#[test]
fn fused_ingest_verdicts_agree_with_reference_preprocess() {
    // The acceptance bar for the u8-domain ingest path: it ships only if
    // it is behaviorally invisible. Across a large sweep of random
    // creatives at ad-slot geometries, verdicts from the fused
    // `Classifier::preprocess` must agree with the full-resolution f32
    // reference pipeline on >= 99.9% of samples, on both precision tiers.
    // Identity geometries are bitwise-equal by construction; resampled
    // ones can differ only by the fixed-point interpolation tolerance,
    // which flips a verdict only when P(ad) sits within that tolerance of
    // the threshold.
    let f32_cls = trained_classifier();
    let int8_cls = f32_cls.clone().with_precision(Precision::Int8);
    let size = f32_cls.input_size();
    // Identity, IAB-banner-ish ratios (scaled down), odd primes, and
    // upscales from tiny creatives.
    let geoms = [
        (size, size),
        (97, 25),
        (120, 60),
        (150, 125),
        (30, 60),
        (13, 17),
        (243, 81),
        (64, 8),
    ];
    // 1024 samples per tier under `--release` (the CI configuration for
    // this file); trimmed in debug where the unoptimized kernels make the
    // full sweep take minutes.
    let rounds = if cfg!(debug_assertions) { 16 } else { 128 };
    let mut rng = Pcg32::seed_from_u64(0xAD_1E57);
    for (tier, cls) in [("f32", &f32_cls), ("int8", &int8_cls)] {
        let mut agree = 0usize;
        let mut total = 0usize;
        let mut max_drift = 0.0f32;
        for _ in 0..rounds {
            for &(w, h) in &geoms {
                let bitmap = noisy_bitmap(w, h, &mut rng);
                let fused = cls.classify(&bitmap);
                let reference = Classifier::preprocess_reference(&bitmap, size);
                let p_ref = cls.classify_tensor(&reference)[0];
                if fused.is_ad == (p_ref >= cls.threshold()) {
                    agree += 1;
                }
                total += 1;
                max_drift = max_drift.max((fused.p_ad - p_ref).abs());
            }
        }
        let agreement = agree as f64 / total as f64;
        assert!(
            agreement >= 0.999,
            "{tier}: fused-vs-reference verdict agreement {agreement:.4} \
             below 0.999 ({agree}/{total})"
        );
        assert!(
            max_drift < 0.1,
            "{tier}: worst-case fused-vs-reference P(ad) drift {max_drift} is not small"
        );
    }
}

#[test]
fn preprocess_into_matches_preprocess_then_copy() {
    // Formation-time fused writes must reproduce the old two-pass
    // assembly exactly: preprocess into a private 1 x 4 x S x S tensor,
    // then `copy_sample_from` into the batch window. The bar is bitwise —
    // both paths run the same resize and normalize kernels, only the copy
    // disappears.
    let size = 32;
    let mut rng = Pcg32::seed_from_u64(404);
    let geoms = [(size, size), (120, 60), (31, 77), (243, 27)];
    let bitmaps: Vec<Bitmap> = geoms
        .iter()
        .map(|&(w, h)| noisy_bitmap(w, h, &mut rng))
        .collect();
    let n = bitmaps.len();

    let mut fused = Tensor::zeros(Shape::new(n, INPUT_CHANNELS, size, size));
    let mut ws = Workspace::new();
    for (i, b) in bitmaps.iter().enumerate() {
        Classifier::preprocess_into(b, size, fused.sample_mut(i), &mut ws);
    }

    let mut assembled = Tensor::zeros(Shape::new(n, INPUT_CHANNELS, size, size));
    for (i, b) in bitmaps.iter().enumerate() {
        let t = Classifier::preprocess(b, size);
        assembled.copy_sample_from(i, &t, 0);
    }

    assert_eq!(
        fused.as_slice(),
        assembled.as_slice(),
        "preprocess_into must be bitwise-equal to preprocess + copy_sample_from"
    );
}

#[test]
fn warm_ingest_formation_cycle_is_allocation_free() {
    // One full submit -> formation -> recycle lap against a single
    // workspace, exactly as the batchers run it: resize each creative to
    // the compact u8 intermediate at submit, normalize into an f32 batch
    // window (f32 tier) and quantize straight from bytes (int8 tier) at
    // formation, then return every buffer to the free lists. After a
    // single warm-up lap the lists must absorb all of it: the allocation
    // counter stays flat no matter how many more laps run.
    let size = 32;
    let per_sample = INPUT_CHANNELS * size * size;
    let mut rng = Pcg32::seed_from_u64(77);
    let geoms = [(size, size), (120, 60), (97, 25), (48, 160)];
    let bitmaps: Vec<Bitmap> = geoms
        .iter()
        .map(|&(w, h)| noisy_bitmap(w, h, &mut rng))
        .collect();

    let cycle = |ws: &mut Workspace| {
        // Submit side: one compact resized sample per pending entry.
        let samples: Vec<_> = bitmaps
            .iter()
            .map(|b| Classifier::resize_to(b, size, ws))
            .collect();
        // f32 formation: normalize straight into the batch buffer.
        let mut batch = ws.take(samples.len() * per_sample);
        for (i, s) in samples.iter().enumerate() {
            normalize_into(
                s.data(),
                size,
                &mut batch[i * per_sample..(i + 1) * per_sample],
            );
        }
        ws.recycle(batch);
        // int8 formation: quantize straight from the queued bytes.
        let mut q = ws.take_i8(samples.len() * per_sample);
        for (i, s) in samples.iter().enumerate() {
            quantize_planar_from_u8(
                s.data(),
                size,
                scale_for_max(s.max_abs()),
                &mut q[i * per_sample..(i + 1) * per_sample],
            );
        }
        ws.recycle_i8(q);
        // Publish: the spent byte samples go back to the u8 free list.
        for s in samples {
            ws.recycle_u8(s.into_data());
        }
    };

    let mut ws = Workspace::new();
    cycle(&mut ws);
    let warm = ws.stats().allocations;
    assert!(warm > 0, "the cold lap must have touched the heap");
    for _ in 0..5 {
        cycle(&mut ws);
    }
    assert_eq!(
        ws.stats().allocations,
        warm,
        "warm submit -> formation cycles must be allocation-free"
    );
}
