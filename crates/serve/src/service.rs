//! The sharded classification service: router, batcher threads, overload
//! policies and lifecycle.
//!
//! [`ClassificationService`] owns K shards (content-hash routed, so a
//! creative always lands on the same shard and the verdict caches stay
//! disjoint) and K batcher threads. Each batcher prefers its home shard's
//! queue; when that is empty it *steals* — it runs a batch from the most
//! loaded sibling's queue against that sibling's cache and waiters — so a
//! skewed traffic mix cannot idle half the fleet while one shard's queue
//! grows. This is the many-core answer to the single-batcher inference
//! engine: same queue → micro-batch → publish protocol, multiplied by K
//! and load-balanced by stealing.
//!
//! Every request carries a soft deadline. Batches form in earliest-
//! deadline order, and when a queue is saturated or a deadline is no
//! longer feasible the configured [`OverloadPolicy`] decides between
//! rejecting work with an explicit [`Verdict::Shed`], degrading it to the
//! int8 tier, or applying backpressure to submitters.

use crate::shard::Shard;
use crate::telemetry::ServiceReport;
use percival_core::cascade::Cascade;
use percival_core::flight::AdmissionHint;
use percival_core::{Classifier, EngineConfig, MemoizedClassifier, Precision, Prediction};
use percival_imgcodec::{Bitmap, HashedBitmap};
use percival_tensor::Workspace;
use percival_util::HistogramSnapshot;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// What the service does once a shard is saturated or a request's deadline
/// is no longer feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Reject the request with an explicit [`Verdict::Shed`] — bounded
    /// latency for everything admitted, explicit loss for the rest.
    #[default]
    Shed,
    /// Keep accepting work but demote pressured requests to the int8
    /// precision tier (bounded logit drift instead of loss). Memory stays
    /// bounded: far past `queue_capacity` (4x) admission falls back to
    /// backpressure rather than letting the queue grow without limit.
    Degrade,
    /// Park submitters until the queue drains (backpressure; latency is
    /// unbounded but nothing is lost or degraded).
    Block,
}

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Shard count. `0` (the default) resolves `PERCIVAL_SHARDS` from the
    /// environment, falling back to the host's available parallelism.
    pub shards: usize,
    /// Largest micro-batch a batcher assembles per forward pass.
    pub max_batch: usize,
    /// Verdict-cache capacity *per shard*.
    pub cache_capacity: usize,
    /// Precision of the primary tier.
    pub precision: Precision,
    /// Default soft deadline attached by [`ClassificationService::submit`].
    pub deadline: Duration,
    /// Behavior at saturation.
    pub overload: OverloadPolicy,
    /// Queued entries per shard beyond which the overload policy engages
    /// (`Degrade` additionally backpressures at 4x this bound so its queue
    /// cannot grow without limit).
    pub queue_capacity: usize,
    /// Whether idle batchers drain loaded siblings' queues.
    pub steal: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 0,
            max_batch: 8,
            cache_capacity: 4096,
            precision: Precision::F32,
            deadline: Duration::from_millis(50),
            overload: OverloadPolicy::Shed,
            queue_capacity: 256,
            steal: true,
        }
    }
}

impl ServiceConfig {
    /// The engine-shaped view of this config (used when comparing against
    /// a single [`percival_core::InferenceEngine`] at equal settings).
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            max_batch: self.max_batch,
            cache_capacity: self.cache_capacity,
            precision: self.precision,
            ..Default::default()
        }
    }

    fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        if let Ok(v) = std::env::var("PERCIVAL_SHARDS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// One classification outcome from the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The request was admitted and classified.
    Classified(Prediction),
    /// The request was rejected by the overload policy (admission-time
    /// saturation or an infeasible deadline). The creative renders
    /// unblocked — PERCIVAL fails open, like the paper's deployment.
    Shed,
}

impl Verdict {
    /// The prediction, when the request was classified.
    pub fn classified(&self) -> Option<Prediction> {
        match self {
            Verdict::Classified(p) => Some(*p),
            Verdict::Shed => None,
        }
    }

    /// True when the request was rejected.
    pub fn is_shed(&self) -> bool {
        matches!(self, Verdict::Shed)
    }
}

/// A pending verdict returned by [`ClassificationService::submit`].
pub struct ServeTicket {
    pub(crate) rx: Receiver<Verdict>,
}

impl ServeTicket {
    /// Blocks until the verdict (or shed decision) is available.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down before resolving this request.
    pub fn wait(self) -> Verdict {
        self.rx
            .recv()
            .expect("classification service dropped a pending request")
    }

    /// Returns the verdict if it is already available.
    pub fn poll(&self) -> Option<Verdict> {
        self.rx.try_recv().ok()
    }
}

/// State shared between the router, the shards and the batcher threads.
pub(crate) struct ServiceShared {
    /// Queue entries across all shards (drives batcher sleep/wake).
    queued: AtomicUsize,
    /// Unresolved queue entries (queued + mid-batch; drives `flush`).
    pending: AtomicUsize,
    shutdown: AtomicBool,
    signal: Mutex<()>,
    work: Condvar,
    idle: Condvar,
}

impl ServiceShared {
    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// A new entry joined some shard's queue.
    pub(crate) fn on_enqueued(&self) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queued.fetch_add(1, Ordering::SeqCst);
        let _guard = self.signal.lock().expect("service signal");
        // All batchers can serve any shard (stealing), but with stealing
        // disabled only the home batcher may consume this entry — wake
        // everyone and let the scan decide.
        self.work.notify_all();
    }

    /// `n` entries left a queue for a batch (or were shed at formation).
    pub(crate) fn on_dequeued(&self, n: usize) {
        self.queued.fetch_sub(n, Ordering::SeqCst);
    }

    /// `n` entries were fully resolved (verdicts delivered or shed).
    pub(crate) fn on_resolved(&self, n: usize) {
        if self.pending.fetch_sub(n, Ordering::SeqCst) == n {
            let _guard = self.signal.lock().expect("service signal");
            self.idle.notify_all();
        }
    }
}

/// The sharded, deadline-aware classification service.
pub struct ClassificationService {
    shards: Vec<Arc<Shard>>,
    shared: Arc<ServiceShared>,
    cfg: ServiceConfig,
    batchers: Vec<JoinHandle<()>>,
    /// Cascade front-end attached by the hook / load generator, so its
    /// per-tier counters surface in [`ClassificationService::report`].
    cascade: OnceLock<Arc<Cascade>>,
}

impl ClassificationService {
    /// Spawns the service around a trained classifier: K shards, each with
    /// its own verdict cache over a clone of the classifier (switched to
    /// the configured precision), plus one batcher thread per shard.
    pub fn new(classifier: Classifier, cfg: ServiceConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be at least 1");
        let shard_count = cfg.resolved_shards();
        let primary = classifier.clone().with_precision(cfg.precision);
        // The degrade tier only exists when the policy can demote work and
        // the primary tier is not already int8.
        let degraded_proto = (cfg.overload == OverloadPolicy::Degrade
            && cfg.precision != Precision::Int8)
            .then(|| classifier.with_precision(Precision::Int8));

        let shared = Arc::new(ServiceShared {
            queued: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            signal: Mutex::new(()),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let shards: Vec<Arc<Shard>> = (0..shard_count)
            .map(|i| {
                let memo = Arc::new(MemoizedClassifier::new(primary.clone(), cfg.cache_capacity));
                Arc::new(Shard::new(i, memo, degraded_proto.clone()))
            })
            .collect();
        let batchers = (0..shard_count)
            .map(|i| {
                let shards = shards.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("percival-serve-{i}"))
                    .spawn(move || batcher_main(i, &shards, &shared, &cfg))
                    .expect("spawn serve batcher")
            })
            .collect();
        ClassificationService {
            shards,
            shared,
            cfg,
            batchers,
            cascade: OnceLock::new(),
        }
    }

    /// Number of shards actually running.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The service configuration in effect.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The shard a creative routes to (content-hash routing: stable for
    /// the service's lifetime, so memoization and single-flight stay
    /// shard-local).
    pub fn shard_of(&self, bitmap: &Bitmap) -> usize {
        route(bitmap.content_hash(), self.shards.len())
    }

    /// Submits one creative with the config's default deadline.
    pub fn submit(&self, bitmap: &Bitmap) -> ServeTicket {
        self.submit_with_key(&bitmap.hashed())
    }

    /// Keyed submission with the default deadline: the [`HashedBitmap`]'s
    /// content hash (computed once, privately, in its constructor — so a
    /// caller cannot poison a shard's verdict memo with a mismatched key)
    /// routes the request and keys its single-flight group. The
    /// hint-then-submit hooks use this to hash each creative exactly once.
    pub fn submit_with_key(&self, img: &HashedBitmap<'_>) -> ServeTicket {
        self.submit_with_key_and_deadline(img, self.cfg.deadline)
    }

    /// Submits one creative with an explicit soft deadline; returns
    /// immediately. Cache hits and shed decisions resolve the ticket
    /// before this call returns.
    pub fn submit_with_deadline(&self, bitmap: &Bitmap, deadline: Duration) -> ServeTicket {
        self.submit_with_key_and_deadline(&bitmap.hashed(), deadline)
    }

    /// [`ClassificationService::submit_with_key`] with an explicit soft
    /// deadline.
    pub fn submit_with_key_and_deadline(
        &self,
        img: &HashedBitmap<'_>,
        deadline: Duration,
    ) -> ServeTicket {
        let shard = &self.shards[route(img.key(), self.shards.len())];
        shard.submit(img, deadline, &self.cfg, &self.shared)
    }

    /// Submits and blocks until the verdict is available.
    pub fn submit_wait(&self, bitmap: &Bitmap) -> Verdict {
        self.submit(bitmap).wait()
    }

    /// A cheap admission probe that feeds overload decisions back to the
    /// renderer hooks *before* submission: a memoized verdict comes back as
    /// [`AdmissionHint::Cached`] without queueing anything, and — under the
    /// `Shed` policy — a creative that would be rejected at admission or
    /// could no longer meet the default deadline reports
    /// [`AdmissionHint::WouldShed`] so the caller can skip it (fail open)
    /// instead of submitting work that resolves as [`Verdict::Shed`] after
    /// the fact. The probe mutates no queues and counts as no submission;
    /// it is advisory — a concurrent burst can still shed an admitted
    /// request.
    pub fn admission_hint(&self, bitmap: &Bitmap) -> AdmissionHint<Verdict> {
        self.admission_hint_with_key(&bitmap.hashed())
    }

    /// [`ClassificationService::admission_hint`] over a pre-hashed bitmap,
    /// so a hook that goes on to submit shares one hash computation between
    /// the probe and [`ClassificationService::submit_with_key`].
    pub fn admission_hint_with_key(&self, img: &HashedBitmap<'_>) -> AdmissionHint<Verdict> {
        self.shards[route(img.key(), self.shards.len())].admission_hint(img.key(), &self.cfg)
    }

    /// Blocks until every queued or in-flight request has been resolved.
    pub fn flush(&self) {
        let mut guard = self.shared.signal.lock().expect("service signal");
        while self.shared.pending.load(Ordering::SeqCst) > 0 {
            guard = self.shared.idle.wait(guard).expect("service idle wait");
        }
        drop(guard);
    }

    /// Registers the cascade front-end whose per-tier counters should
    /// surface in [`ClassificationService::report`]. First registration
    /// wins; later calls are ignored (the hook and the load generator may
    /// both try to attach the same cascade).
    pub fn attach_cascade(&self, cascade: Arc<Cascade>) {
        let _ = self.cascade.set(cascade);
    }

    /// The attached cascade front-end, if any.
    pub fn cascade(&self) -> Option<&Arc<Cascade>> {
        self.cascade.get()
    }

    /// Snapshots every shard's counters plus the service latency histogram
    /// (and the cascade front-end's tier attribution, when attached). The
    /// service-wide latency view is the merge of the shard-local
    /// recorders, so shards never contend on a shared histogram.
    pub fn report(&self) -> ServiceReport {
        let shards: Vec<_> = self.shards.iter().map(|s| s.report()).collect();
        let latency = shards
            .iter()
            .fold(HistogramSnapshot::default(), |acc, s| acc.merge(&s.latency));
        ServiceReport {
            shards,
            latency,
            cascade: self.cascade.get().map(|c| c.counters().snapshot()),
        }
    }

    /// Resets every shard's latency histogram (between load-generator
    /// phases).
    pub fn reset_latency(&self) {
        for shard in &self.shards {
            shard.reset_latency();
        }
    }
}

impl Drop for ClassificationService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.signal.lock().expect("service signal");
            self.shared.work.notify_all();
        }
        for shard in &self.shards {
            shard.release_blocked();
        }
        // Batchers drain every queue before exiting, so no ticket is
        // dropped by shutdown.
        for batcher in self.batchers.drain(..) {
            let _ = batcher.join();
        }
    }
}

impl std::fmt::Debug for ClassificationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassificationService")
            .field("shards", &self.shards.len())
            .field("max_batch", &self.cfg.max_batch)
            .field("overload", &self.cfg.overload)
            .field("pending", &self.shared.pending.load(Ordering::Relaxed))
            .finish()
    }
}

/// Maps a content hash onto a shard (Fibonacci spread so weakly-mixed
/// hashes still distribute).
fn route(key: u64, shards: usize) -> usize {
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards
}

/// One batcher thread: drain the home shard, then steal from the most
/// loaded sibling, then sleep until work arrives anywhere.
fn batcher_main(home: usize, shards: &[Arc<Shard>], shared: &ServiceShared, cfg: &ServiceConfig) {
    let mut ws = Workspace::new();
    loop {
        let mut did_work = shards[home].process_one_batch(&mut ws, cfg, shared, false) > 0;
        if !did_work && cfg.steal {
            // Steal from the deepest queue first: that shard's deadlines
            // are at the greatest risk.
            let victim = shards
                .iter()
                .enumerate()
                .filter(|&(i, s)| i != home && s.depth() > 0)
                .max_by_key(|(_, s)| s.depth())
                .map(|(i, _)| i);
            if let Some(v) = victim {
                did_work = shards[v].process_one_batch(&mut ws, cfg, shared, true) > 0;
            }
        }
        if did_work {
            continue;
        }
        let mut guard = shared.signal.lock().expect("service signal");
        loop {
            let has_work = if cfg.steal {
                shared.queued.load(Ordering::SeqCst) > 0
            } else {
                shards[home].depth() > 0
            };
            if has_work {
                break;
            }
            if shared.is_shutdown() {
                return;
            }
            guard = shared.work.wait(guard).expect("service work wait");
        }
    }
}
