//! Wait-free serving telemetry: per-shard counters plus service-wide
//! latency histograms, snapshottable as a [`ServiceReport`].
//!
//! Every counter is a relaxed atomic touched from the submission and
//! batcher hot paths; nothing here takes a lock. Reports are plain data so
//! benches and experiments can serialize or diff them without reaching
//! back into the live service.

use percival_util::{HistogramSnapshot, LatencyHistogram};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Live counters for one shard (all monotonic except `queue_depth`).
#[derive(Debug, Default)]
pub(crate) struct ShardTelemetry {
    pub(crate) submitted: AtomicU64,
    pub(crate) memo_hits: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) shed_admission: AtomicU64,
    pub(crate) shed_late: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_images: AtomicU64,
    pub(crate) stolen_batches: AtomicU64,
    pub(crate) max_queue_depth: AtomicU64,
    /// Entries currently queued (gauge; drives work-stealing scans and the
    /// per-shard depth report).
    pub(crate) queue_depth: AtomicUsize,
    /// Exponentially-weighted mean of per-image classification nanoseconds,
    /// the service-time estimate behind deadline-feasibility shedding.
    pub(crate) ewma_image_ns: AtomicU64,
}

impl ShardTelemetry {
    /// Folds one measured per-image cost into the service-time estimate
    /// (alpha = 1/4; integer EWMA, monotone under concurrent updates).
    pub(crate) fn observe_image_cost(&self, ns: u64) {
        let old = self.ewma_image_ns.load(Ordering::Relaxed);
        let new = if old == 0 { ns } else { old - old / 4 + ns / 4 };
        self.ewma_image_ns.store(new, Ordering::Relaxed);
    }

    pub(crate) fn report(&self, index: usize) -> ShardReport {
        ShardReport {
            index,
            submitted: self.submitted.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            shed_admission: self.shed_admission.load(Ordering::Relaxed),
            shed_late: self.shed_late.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_images: self.batched_images.load(Ordering::Relaxed),
            stolen_batches: self.stolen_batches.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            ewma_image_ns: self.ewma_image_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index within the service.
    pub index: usize,
    /// Requests routed to this shard (including cache hits and sheds).
    pub submitted: u64,
    /// Requests answered from the shard's verdict cache without queueing.
    pub memo_hits: u64,
    /// Requests merged into an in-flight identical creative
    /// (single-flight deduplication).
    pub coalesced: u64,
    /// Requests rejected at admission by the overload policy.
    pub shed_admission: u64,
    /// Queued requests rejected at batch formation because their deadline
    /// was no longer feasible.
    pub shed_late: u64,
    /// Requests demoted to the int8 tier under pressure.
    pub degraded: u64,
    /// Micro-batches executed against this shard's queue.
    pub batches: u64,
    /// Images classified through those batches.
    pub batched_images: u64,
    /// Batches of this shard's work executed by a *different* shard's
    /// batcher thread (work stealing).
    pub stolen_batches: u64,
    /// Entries queued right now.
    pub queue_depth: usize,
    /// Largest queue depth observed.
    pub max_queue_depth: u64,
    /// Current per-image service-time estimate (EWMA, nanoseconds).
    pub ewma_image_ns: u64,
}

impl ShardReport {
    /// Fraction of submissions resolved without a CNN pass.
    pub fn dedup_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.memo_hits + self.coalesced) as f64 / self.submitted as f64
        }
    }

    /// Requests rejected by either shedding point.
    pub fn shed(&self) -> u64 {
        self.shed_admission + self.shed_late
    }
}

/// Service-wide snapshot: per-shard rows plus aggregate counters and the
/// admitted-request latency histogram.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// One row per shard.
    pub shards: Vec<ShardReport>,
    /// Admission-to-verdict latency of classified (admitted, not shed)
    /// requests.
    pub latency: HistogramSnapshot,
}

impl ServiceReport {
    fn total(&self, f: impl Fn(&ShardReport) -> u64) -> u64 {
        self.shards.iter().map(f).sum()
    }

    /// Requests submitted across all shards.
    pub fn submitted(&self) -> u64 {
        self.total(|s| s.submitted)
    }

    /// Cache hits across all shards.
    pub fn memo_hits(&self) -> u64 {
        self.total(|s| s.memo_hits)
    }

    /// Single-flight merges across all shards.
    pub fn coalesced(&self) -> u64 {
        self.total(|s| s.coalesced)
    }

    /// Requests shed (admission + late) across all shards.
    pub fn shed(&self) -> u64 {
        self.total(|s| s.shed())
    }

    /// Requests demoted to the int8 tier across all shards.
    pub fn degraded(&self) -> u64 {
        self.total(|s| s.degraded)
    }

    /// Images classified through micro-batches across all shards.
    pub fn batched_images(&self) -> u64 {
        self.total(|s| s.batched_images)
    }

    /// Batches run by a non-home batcher across all shards.
    pub fn stolen_batches(&self) -> u64 {
        self.total(|s| s.stolen_batches)
    }

    /// Fraction of submissions shed.
    pub fn shed_rate(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            0.0
        } else {
            self.shed() as f64 / submitted as f64
        }
    }

    /// Fraction of submissions resolved without a CNN pass.
    pub fn dedup_rate(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            0.0
        } else {
            (self.memo_hits() + self.coalesced()) as f64 / submitted as f64
        }
    }
}

impl core::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "service: {} submitted  {} classified  {} shed ({:.1}%)  dedup {:.1}%  stolen {}",
            self.submitted(),
            self.batched_images(),
            self.shed(),
            self.shed_rate() * 100.0,
            self.dedup_rate() * 100.0,
            self.stolen_batches(),
        )?;
        writeln!(f, "latency: {}", self.latency)?;
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: sub {}  hit {}  coal {}  shed {}+{}  deg {}  batches {} ({} imgs, {} stolen)  depth {}/{}",
                s.index,
                s.submitted,
                s.memo_hits,
                s.coalesced,
                s.shed_admission,
                s.shed_late,
                s.degraded,
                s.batches,
                s.batched_images,
                s.stolen_batches,
                s.queue_depth,
                s.max_queue_depth,
            )?;
        }
        Ok(())
    }
}

/// The service-wide latency recorder shared by every shard's publish path.
#[derive(Debug, Default)]
pub(crate) struct ServiceTelemetry {
    /// Admission-to-verdict latency of classified requests.
    pub(crate) latency: LatencyHistogram,
}
