//! Serving telemetry: plain-data per-shard reports over the flight-control
//! core's wait-free counter blocks, plus the service-wide latency
//! histogram.
//!
//! Since the flight-control refactor the live counters themselves are
//! owned by each shard's `percival_core::flight::FlightTable` — the same
//! counter vocabulary the inference engine exposes — so the engine and the
//! serving layer no longer maintain parallel telemetry structs. This
//! module shapes those shared snapshots into the serving layer's report
//! types. Reports are plain data so benches and experiments can serialize
//! or diff them without reaching back into the live service.

use percival_core::cascade::CascadeSnapshot;
use percival_core::flight::FlightSnapshot;
use percival_tensor::WorkspaceStats;
use percival_util::hist::bucket_upper_bound_ns;
use percival_util::prom::PromWriter;
use percival_util::HistogramSnapshot;

/// One per-shard Prometheus metric family: name, help text, and the
/// accessor that reads its value from a shard's counter snapshot.
type ShardFamily<T> = (&'static str, &'static str, fn(&FlightSnapshot) -> T);

/// Plain-data snapshot of one shard's counters (one row of a
/// [`ServiceReport`]): the shard index plus the shard's flight-table
/// [`FlightSnapshot`], embedded whole so a counter added to the shared
/// block can never silently vanish from serve telemetry. `Deref` exposes
/// the snapshot's fields directly (`report.shards[0].submitted`, …).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardReport {
    /// Shard index within the service.
    pub index: usize,
    /// The shard's flight-table counters at snapshot time.
    pub counters: FlightSnapshot,
    /// Admission-to-verdict latency of this shard's classified requests
    /// (shard-local recorder; the service report merges these).
    pub latency: HistogramSnapshot,
}

impl std::ops::Deref for ShardReport {
    type Target = FlightSnapshot;

    fn deref(&self) -> &FlightSnapshot {
        &self.counters
    }
}

impl ShardReport {
    /// Shapes a flight-table snapshot into a shard row.
    pub(crate) fn from_snapshot(
        index: usize,
        counters: FlightSnapshot,
        latency: HistogramSnapshot,
    ) -> Self {
        ShardReport {
            index,
            counters,
            latency,
        }
    }

    /// Requests rejected by either shedding point.
    pub fn shed(&self) -> u64 {
        self.counters.shed_admission + self.counters.shed_late
    }
}

/// Service-wide snapshot: per-shard rows plus aggregate counters and the
/// admitted-request latency histogram.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// One row per shard.
    pub shards: Vec<ShardReport>,
    /// Admission-to-verdict latency of classified (admitted, not shed)
    /// requests.
    pub latency: HistogramSnapshot,
    /// Per-tier attribution of the cascade front-end, when one is attached
    /// (`None` for services running without a cascade).
    pub cascade: Option<CascadeSnapshot>,
}

impl ServiceReport {
    fn total(&self, f: impl Fn(&ShardReport) -> u64) -> u64 {
        self.shards.iter().map(f).sum()
    }

    /// Requests submitted across all shards.
    pub fn submitted(&self) -> u64 {
        self.total(|s| s.submitted)
    }

    /// Cache hits across all shards.
    pub fn memo_hits(&self) -> u64 {
        self.total(|s| s.memo_hits)
    }

    /// Single-flight merges across all shards.
    pub fn coalesced(&self) -> u64 {
        self.total(|s| s.coalesced)
    }

    /// Coalesced requests that re-prioritized their group, across all
    /// shards.
    pub fn reprioritized(&self) -> u64 {
        self.total(|s| s.reprioritized)
    }

    /// Requests shed (admission + late) across all shards.
    pub fn shed(&self) -> u64 {
        self.total(|s| s.shed())
    }

    /// Requests demoted to the int8 tier across all shards.
    pub fn degraded(&self) -> u64 {
        self.total(|s| s.degraded)
    }

    /// Images classified through micro-batches across all shards.
    pub fn batched_images(&self) -> u64 {
        self.total(|s| s.batched_images)
    }

    /// Batches run by a non-home batcher across all shards.
    pub fn stolen_batches(&self) -> u64 {
        self.total(|s| s.stolen_batches)
    }

    /// Fraction of submissions shed.
    pub fn shed_rate(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            0.0
        } else {
            self.shed() as f64 / submitted as f64
        }
    }

    /// Fraction of submissions resolved without a CNN pass.
    pub fn dedup_rate(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            0.0
        } else {
            (self.memo_hits() + self.coalesced()) as f64 / submitted as f64
        }
    }
}

impl core::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "service: {} submitted  {} classified  {} shed ({:.1}%)  dedup {:.1}%  stolen {}",
            self.submitted(),
            self.batched_images(),
            self.shed(),
            self.shed_rate() * 100.0,
            self.dedup_rate() * 100.0,
            self.stolen_batches(),
        )?;
        writeln!(f, "latency: {}", self.latency)?;
        if let Some(cascade) = &self.cascade {
            writeln!(f, "{cascade}")?;
        }
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: sub {}  hit {}  coal {} ({} repri)  shed {}+{}  deg {}  batches {} ({} imgs, {} stolen)  depth {}/{}",
                s.index,
                s.submitted,
                s.memo_hits,
                s.coalesced,
                s.reprioritized,
                s.shed_admission,
                s.shed_late,
                s.degraded,
                s.batches,
                s.batched_images,
                s.stolen_batches,
                s.queue_depth,
                s.max_queue_depth,
            )?;
        }
        Ok(())
    }
}

impl ServiceReport {
    /// Renders the report as a Prometheus text-exposition document — the
    /// unified metrics registry of the serving layer. Per-shard flight
    /// counters carry a `shard` label; cascade counters appear when a
    /// cascade is attached; pass the classifier's [`WorkspaceStats`] to
    /// include allocator counters; the latency histogram is exported as a
    /// native Prometheus histogram whose `le` bounds are the recorder's
    /// base-2 nanosecond bucket bounds converted to seconds.
    pub fn prometheus(&self, workspace: Option<&WorkspaceStats>) -> String {
        let mut w = PromWriter::new();

        let counters: &[ShardFamily<u64>] = &[
            (
                "percival_shard_submitted_total",
                "Submissions, including cache hits and rejections.",
                |s| s.submitted,
            ),
            (
                "percival_shard_memo_hits_total",
                "Submissions answered from the verdict cache without queueing.",
                |s| s.memo_hits,
            ),
            (
                "percival_shard_coalesced_total",
                "Submissions merged into an already-queued identical image.",
                |s| s.coalesced,
            ),
            (
                "percival_shard_reprioritized_total",
                "Coalesced submissions that re-prioritized their group.",
                |s| s.reprioritized,
            ),
            (
                "percival_shard_shed_admission_total",
                "Submissions rejected at admission by the overload gate.",
                |s| s.shed_admission,
            ),
            (
                "percival_shard_shed_late_total",
                "Queued entries rejected at batch formation.",
                |s| s.shed_late,
            ),
            (
                "percival_shard_degraded_total",
                "Entries demoted to a degraded execution tier.",
                |s| s.degraded,
            ),
            (
                "percival_shard_batches_total",
                "Micro-batches executed.",
                |s| s.batches,
            ),
            (
                "percival_shard_batched_images_total",
                "Images classified through micro-batches.",
                |s| s.batched_images,
            ),
            (
                "percival_shard_stolen_batches_total",
                "Batches executed by a non-home batcher thread.",
                |s| s.stolen_batches,
            ),
        ];
        for (name, help, get) in counters {
            w.header(name, help, "counter");
            for s in &self.shards {
                let shard = s.index.to_string();
                w.sample(name, &[("shard", &shard)], get(&s.counters) as f64);
            }
        }

        let seconds: &[ShardFamily<u64>] = &[
            (
                "percival_shard_queue_wait_seconds_total",
                "True per-entry queue wait (submit push to batch formation).",
                |s| s.queue_wait_ns,
            ),
            (
                "percival_shard_service_seconds_total",
                "Per-batch service wall time (formation to publish).",
                |s| s.service_ns,
            ),
        ];
        for (name, help, get) in seconds {
            w.header(name, help, "counter");
            for s in &self.shards {
                let shard = s.index.to_string();
                w.sample(name, &[("shard", &shard)], get(&s.counters) as f64 / 1e9);
            }
        }

        let gauges: &[ShardFamily<f64>] = &[
            (
                "percival_shard_queue_depth",
                "Entries queued at scrape time.",
                |s| s.queue_depth as f64,
            ),
            (
                "percival_shard_max_queue_depth",
                "Largest queue depth observed.",
                |s| s.max_queue_depth as f64,
            ),
            (
                "percival_shard_max_batch",
                "Largest micro-batch observed.",
                |s| s.max_batch as f64,
            ),
            (
                "percival_shard_ewma_image_seconds",
                "Per-image service-time estimate (EWMA).",
                |s| s.ewma_image_ns as f64 / 1e9,
            ),
            (
                "percival_shard_dedup_rate",
                "Fraction of submissions resolved without a CNN pass.",
                |s| s.dedup_rate,
            ),
        ];
        for (name, help, get) in gauges {
            w.header(name, help, "gauge");
            for s in &self.shards {
                let shard = s.index.to_string();
                w.sample(name, &[("shard", &shard)], get(&s.counters));
            }
        }

        if let Some(c) = &self.cascade {
            let cascade: &[(&str, &str, u64)] = &[
                (
                    "percival_cascade_requests_total",
                    "Requests run through the cascade front-end.",
                    c.requests,
                ),
                (
                    "percival_cascade_tier0_blocked_total",
                    "Requests blocked by a tier-0 filter rule.",
                    c.tier0_blocked,
                ),
                (
                    "percival_cascade_tier0_exempted_total",
                    "Requests pinned as content by a tier-0 exception.",
                    c.tier0_exempted,
                ),
                (
                    "percival_cascade_tier1_blocked_total",
                    "Requests blocked by the tier-1 structural score.",
                    c.tier1_blocked,
                ),
                (
                    "percival_cascade_tier1_kept_total",
                    "Requests kept by the tier-1 structural score.",
                    c.tier1_kept,
                ),
                (
                    "percival_cascade_cnn_residual_total",
                    "Requests that fell through to the CNN.",
                    c.cnn_residual,
                ),
            ];
            for (name, help, v) in cascade {
                w.header(name, help, "counter");
                w.sample(name, &[], *v as f64);
            }
        }

        if let Some(ws) = workspace {
            let stats: &[(&str, &str, u64)] = &[
                (
                    "percival_workspace_allocations_total",
                    "Fresh scratch-buffer allocations by the tensor workspace.",
                    ws.allocations,
                ),
                (
                    "percival_workspace_reuses_total",
                    "Scratch-buffer requests served from the reuse pool.",
                    ws.reuses,
                ),
                (
                    "percival_workspace_weight_packs_total",
                    "Weight panels packed (first-touch per layer per tier).",
                    ws.weight_packs,
                ),
            ];
            for (name, help, v) in stats {
                w.header(name, help, "counter");
                w.sample(name, &[], *v as f64);
            }
        }

        w.header(
            "percival_request_latency_seconds",
            "Admission-to-verdict latency of classified requests.",
            "histogram",
        );
        let mut buckets = Vec::new();
        if let Some(last) = self.latency.buckets.iter().rposition(|&c| c > 0) {
            let mut cumulative = 0u64;
            for (b, &c) in self.latency.buckets.iter().enumerate().take(last + 1) {
                cumulative += c;
                buckets.push((bucket_upper_bound_ns(b) / 1e9, cumulative));
            }
        }
        w.histogram(
            "percival_request_latency_seconds",
            &[],
            &buckets,
            self.latency.sum.as_secs_f64(),
            self.latency.count,
        );

        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_report() -> ServiceReport {
        let counters = FlightSnapshot {
            submitted: 10,
            memo_hits: 2,
            coalesced: 1,
            reprioritized: 1,
            shed_admission: 1,
            shed_late: 0,
            degraded: 1,
            batches: 3,
            batched_images: 6,
            max_batch: 4,
            stolen_batches: 1,
            queue_depth: 0,
            max_queue_depth: 5,
            ewma_image_ns: 2_000_000,
            queue_wait_ns: 4_000_000,
            service_ns: 12_000_000,
            dedup_rate: 0.3,
        };
        let mut latency = HistogramSnapshot {
            count: 3,
            sum: Duration::from_nanos(3_000_000),
            ..HistogramSnapshot::default()
        };
        latency.buckets[10] = 2;
        latency.buckets[20] = 1;
        ServiceReport {
            shards: vec![ShardReport {
                index: 0,
                counters,
                latency,
            }],
            latency,
            cascade: Some(CascadeSnapshot {
                requests: 10,
                tier0_blocked: 3,
                tier0_exempted: 1,
                tier1_blocked: 2,
                tier1_kept: 1,
                cnn_residual: 3,
            }),
        }
    }

    /// Golden-file test: the full exposition document for a fixed report
    /// must match `testdata/metrics.prom` byte for byte. Regenerate with
    /// `cargo test -p percival_serve golden -- --ignored` after deliberate
    /// format changes (the ignored test below rewrites the file).
    #[test]
    fn prometheus_exposition_matches_golden_file() {
        let ws = WorkspaceStats {
            allocations: 12,
            reuses: 40,
            weight_packs: 8,
        };
        let text = sample_report().prometheus(Some(&ws));
        let golden = include_str!("testdata/metrics.prom");
        assert_eq!(
            text, golden,
            "exposition drifted from testdata/metrics.prom"
        );
    }

    /// Rewrites the golden file from the current renderer; run explicitly
    /// after deliberate format changes.
    #[test]
    #[ignore = "regenerates testdata/metrics.prom"]
    fn prometheus_regenerate_golden_file() {
        let ws = WorkspaceStats {
            allocations: 12,
            reuses: 40,
            weight_packs: 8,
        };
        let text = sample_report().prometheus(Some(&ws));
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/src/testdata/metrics.prom");
        std::fs::write(path, &text).expect("write golden file");
    }

    #[test]
    fn prometheus_omits_optional_families_when_absent() {
        let mut report = sample_report();
        report.cascade = None;
        let text = report.prometheus(None);
        assert!(!text.contains("percival_cascade_"));
        assert!(!text.contains("percival_workspace_"));
        // The histogram is always present, +Inf bucket carrying the count.
        assert!(text.contains("percival_request_latency_seconds_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn prometheus_latency_histogram_is_cumulative_in_seconds() {
        let text = sample_report().prometheus(None);
        // Bucket 10 upper bound is (2^10 - 1) ns; bucket 20 is (2^20 - 1) ns.
        assert!(text.contains("percival_request_latency_seconds_bucket{le=\"0.000001023\"} 2\n"));
        assert!(text.contains("percival_request_latency_seconds_bucket{le=\"0.001048575\"} 3\n"));
        assert!(text.contains("percival_request_latency_seconds_sum 0.003\n"));
        assert!(text.contains("percival_request_latency_seconds_count 3\n"));
    }
}
