//! Serving telemetry: plain-data per-shard reports over the flight-control
//! core's wait-free counter blocks, plus the service-wide latency
//! histogram.
//!
//! Since the flight-control refactor the live counters themselves are
//! owned by each shard's `percival_core::flight::FlightTable` — the same
//! counter vocabulary the inference engine exposes — so the engine and the
//! serving layer no longer maintain parallel telemetry structs. This
//! module shapes those shared snapshots into the serving layer's report
//! types. Reports are plain data so benches and experiments can serialize
//! or diff them without reaching back into the live service.

use percival_core::cascade::CascadeSnapshot;
use percival_core::flight::FlightSnapshot;
use percival_util::{HistogramSnapshot, LatencyHistogram};

/// Plain-data snapshot of one shard's counters (one row of a
/// [`ServiceReport`]): the shard index plus the shard's flight-table
/// [`FlightSnapshot`], embedded whole so a counter added to the shared
/// block can never silently vanish from serve telemetry. `Deref` exposes
/// the snapshot's fields directly (`report.shards[0].submitted`, …).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardReport {
    /// Shard index within the service.
    pub index: usize,
    /// The shard's flight-table counters at snapshot time.
    pub counters: FlightSnapshot,
}

impl std::ops::Deref for ShardReport {
    type Target = FlightSnapshot;

    fn deref(&self) -> &FlightSnapshot {
        &self.counters
    }
}

impl ShardReport {
    /// Shapes a flight-table snapshot into a shard row.
    pub(crate) fn from_snapshot(index: usize, counters: FlightSnapshot) -> Self {
        ShardReport { index, counters }
    }

    /// Requests rejected by either shedding point.
    pub fn shed(&self) -> u64 {
        self.counters.shed_admission + self.counters.shed_late
    }
}

/// Service-wide snapshot: per-shard rows plus aggregate counters and the
/// admitted-request latency histogram.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// One row per shard.
    pub shards: Vec<ShardReport>,
    /// Admission-to-verdict latency of classified (admitted, not shed)
    /// requests.
    pub latency: HistogramSnapshot,
    /// Per-tier attribution of the cascade front-end, when one is attached
    /// (`None` for services running without a cascade).
    pub cascade: Option<CascadeSnapshot>,
}

impl ServiceReport {
    fn total(&self, f: impl Fn(&ShardReport) -> u64) -> u64 {
        self.shards.iter().map(f).sum()
    }

    /// Requests submitted across all shards.
    pub fn submitted(&self) -> u64 {
        self.total(|s| s.submitted)
    }

    /// Cache hits across all shards.
    pub fn memo_hits(&self) -> u64 {
        self.total(|s| s.memo_hits)
    }

    /// Single-flight merges across all shards.
    pub fn coalesced(&self) -> u64 {
        self.total(|s| s.coalesced)
    }

    /// Coalesced requests that re-prioritized their group, across all
    /// shards.
    pub fn reprioritized(&self) -> u64 {
        self.total(|s| s.reprioritized)
    }

    /// Requests shed (admission + late) across all shards.
    pub fn shed(&self) -> u64 {
        self.total(|s| s.shed())
    }

    /// Requests demoted to the int8 tier across all shards.
    pub fn degraded(&self) -> u64 {
        self.total(|s| s.degraded)
    }

    /// Images classified through micro-batches across all shards.
    pub fn batched_images(&self) -> u64 {
        self.total(|s| s.batched_images)
    }

    /// Batches run by a non-home batcher across all shards.
    pub fn stolen_batches(&self) -> u64 {
        self.total(|s| s.stolen_batches)
    }

    /// Fraction of submissions shed.
    pub fn shed_rate(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            0.0
        } else {
            self.shed() as f64 / submitted as f64
        }
    }

    /// Fraction of submissions resolved without a CNN pass.
    pub fn dedup_rate(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            0.0
        } else {
            (self.memo_hits() + self.coalesced()) as f64 / submitted as f64
        }
    }
}

impl core::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "service: {} submitted  {} classified  {} shed ({:.1}%)  dedup {:.1}%  stolen {}",
            self.submitted(),
            self.batched_images(),
            self.shed(),
            self.shed_rate() * 100.0,
            self.dedup_rate() * 100.0,
            self.stolen_batches(),
        )?;
        writeln!(f, "latency: {}", self.latency)?;
        if let Some(cascade) = &self.cascade {
            writeln!(f, "{cascade}")?;
        }
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: sub {}  hit {}  coal {} ({} repri)  shed {}+{}  deg {}  batches {} ({} imgs, {} stolen)  depth {}/{}",
                s.index,
                s.submitted,
                s.memo_hits,
                s.coalesced,
                s.reprioritized,
                s.shed_admission,
                s.shed_late,
                s.degraded,
                s.batches,
                s.batched_images,
                s.stolen_batches,
                s.queue_depth,
                s.max_queue_depth,
            )?;
        }
        Ok(())
    }
}

/// The service-wide latency recorder shared by every shard's publish path.
#[derive(Debug, Default)]
pub(crate) struct ServiceTelemetry {
    /// Admission-to-verdict latency of classified requests.
    pub(crate) latency: LatencyHistogram,
}
