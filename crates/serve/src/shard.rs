//! One shard: an earliest-deadline-first queue, a shard-local verdict
//! cache with single-flight deduplication, and the batch-formation /
//! publication logic executed by (any) batcher thread.
//!
//! Shards never talk to each other. The router sends every submission of a
//! given creative to the same shard, so memoization and single-flight
//! grouping need no cross-shard coordination; work stealing moves *compute*
//! to a loaded shard's queue (an idle batcher runs the victim shard's
//! batch against the victim's own cache and waiters) rather than moving
//! queue entries between shards.
//!
//! A shard deliberately parallels `percival_core::engine` rather than
//! wrapping it: the engine's FIFO queue cannot express EDF ordering,
//! per-entry deadlines, feasibility shedding or tier demotion without
//! threading all of that through `EngineConfig` and the in-browser hook
//! path that depends on it. The cost is that the delicate publish
//! invariants exist twice; any change to one protocol must be mirrored in
//! the other (see the ROADMAP open item on unifying them):
//!
//! - memoize a verdict *before* removing its single-flight group, so a
//!   submitter that misses the group always hits the cache;
//! - coalesce-or-recheck-cache must happen under one state-lock hold;
//! - queued/pending accounting must be updated while the state lock is
//!   held, so a concurrent batcher cannot underflow the counters.

use crate::service::{OverloadPolicy, ServeTicket, ServiceConfig, ServiceShared, Verdict};
use crate::telemetry::ShardTelemetry;
use percival_core::{Classifier, MemoizedClassifier, Prediction};
use percival_imgcodec::Bitmap;
use percival_tensor::{Shape, Tensor, Workspace};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued classification request (a single-flight group's queue entry).
pub(crate) struct Pending {
    pub(crate) deadline: Instant,
    /// Admission order; tie-breaks equal deadlines so batch formation is
    /// deterministic (FIFO within a deadline).
    pub(crate) seq: u64,
    pub(crate) key: u64,
    /// Preprocessed `1 x 4 x S x S` input (resized on the submitting
    /// thread, like the engine does).
    pub(crate) tensor: Tensor,
    pub(crate) enqueued: Instant,
    /// Run on the degraded (int8) tier.
    pub(crate) degraded: bool,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the *earliest* deadline is
        // popped first (EDF), FIFO within equal deadlines.
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}

#[derive(Default)]
pub(crate) struct ShardState {
    /// EDF-ordered queue of single-flight groups.
    heap: BinaryHeap<Pending>,
    /// Single-flight table: content hash → everyone waiting on it.
    waiters: HashMap<u64, Vec<Sender<Verdict>>>,
}

pub(crate) struct Shard {
    pub(crate) index: usize,
    /// Primary tier: the shard-local verdict cache over the configured
    /// precision's classifier.
    pub(crate) memo: Arc<MemoizedClassifier>,
    /// Int8 tier for [`OverloadPolicy::Degrade`]; `None` when the primary
    /// tier already runs int8 or the policy never degrades.
    degraded_tier: Option<Classifier>,
    state: Mutex<ShardState>,
    /// Wakes submitters blocked by [`OverloadPolicy::Block`] backpressure.
    space: Condvar,
    pub(crate) telemetry: ShardTelemetry,
    seq: AtomicU64,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        memo: Arc<MemoizedClassifier>,
        degraded_tier: Option<Classifier>,
    ) -> Self {
        Shard {
            index,
            memo,
            degraded_tier,
            state: Mutex::new(ShardState::default()),
            space: Condvar::new(),
            telemetry: ShardTelemetry::default(),
            seq: AtomicU64::new(0),
        }
    }

    fn prediction(&self, p_ad: f32, elapsed: Duration) -> Prediction {
        Prediction {
            p_ad,
            is_ad: p_ad >= self.memo.classifier().threshold(),
            elapsed,
        }
    }

    /// Entries currently queued (used by stealing scans and reports).
    pub(crate) fn depth(&self) -> usize {
        self.telemetry.queue_depth.load(Ordering::Relaxed)
    }

    /// Admits one request: cache hit and single-flight merges resolve or
    /// attach immediately; otherwise the request joins the EDF queue,
    /// subject to the overload policy when the queue is full.
    pub(crate) fn submit(
        &self,
        bitmap: &Bitmap,
        deadline_in: Duration,
        cfg: &ServiceConfig,
        shared: &ServiceShared,
    ) -> ServeTicket {
        let t = &self.telemetry;
        t.submitted.fetch_add(1, Ordering::Relaxed);
        let key = bitmap.content_hash();
        let (tx, rx) = channel();
        let ticket = ServeTicket { rx };
        if let Some(p_ad) = self.memo.cached(key) {
            t.memo_hits.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Verdict::Classified(self.prediction(p_ad, Duration::ZERO)));
            return ticket;
        }
        // Preprocess outside the lock, on the submitting thread; wasted
        // only when this submission coalesces.
        let input_size = self.memo.classifier().input_size();
        let tensor = Classifier::preprocess(bitmap, input_size);
        let now = Instant::now();

        let mut state = self.state.lock().expect("shard state");
        if let Some(group) = state.waiters.get_mut(&key) {
            t.coalesced.fetch_add(1, Ordering::Relaxed);
            group.push(tx);
            return ticket;
        }
        // Re-check the cache under the lock: a batcher memoizes verdicts
        // before removing their single-flight group, so a miss observed
        // before the lock may since have resolved.
        if let Some(p_ad) = self.memo.cached(key) {
            t.memo_hits.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Verdict::Classified(self.prediction(p_ad, Duration::ZERO)));
            return ticket;
        }

        let mut degraded = false;
        if state.heap.len() >= cfg.queue_capacity {
            // `Degrade` demotes instead of bounding the queue, so it needs a
            // hard memory backstop: far past capacity it falls back to
            // backpressure (never rejection — "Degrade never sheds" holds).
            let block_at = match cfg.overload {
                OverloadPolicy::Block => cfg.queue_capacity,
                OverloadPolicy::Degrade => cfg.queue_capacity.saturating_mul(4),
                OverloadPolicy::Shed => usize::MAX,
            };
            match cfg.overload {
                OverloadPolicy::Shed => {
                    t.shed_admission.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Verdict::Shed);
                    return ticket;
                }
                OverloadPolicy::Degrade | OverloadPolicy::Block => {
                    degraded =
                        cfg.overload == OverloadPolicy::Degrade && self.degraded_tier.is_some();
                    // Backpressure: park the submitter until a batch drains.
                    while state.heap.len() >= block_at && !shared.is_shutdown() {
                        state = self.space.wait(state).expect("shard space wait");
                    }
                    if shared.is_shutdown() {
                        t.shed_admission.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Verdict::Shed);
                        return ticket;
                    }
                    // The lock was released while parked: the same creative
                    // may have been enqueued or even classified meanwhile —
                    // re-inserting would clobber that single-flight group.
                    if let Some(group) = state.waiters.get_mut(&key) {
                        t.coalesced.fetch_add(1, Ordering::Relaxed);
                        group.push(tx);
                        return ticket;
                    }
                    if let Some(p_ad) = self.memo.cached(key) {
                        t.memo_hits.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Verdict::Classified(self.prediction(p_ad, Duration::ZERO)));
                        return ticket;
                    }
                }
            }
        }
        if degraded {
            t.degraded.fetch_add(1, Ordering::Relaxed);
        }
        state.waiters.insert(key, vec![tx]);
        state.heap.push(Pending {
            deadline: now + deadline_in,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            key,
            tensor,
            enqueued: now,
            degraded,
        });
        let depth = state.heap.len();
        // Depth gauge and queued/pending accounting must happen while the
        // state lock is still held: an already-awake batcher can pop this
        // entry the instant the lock drops, and its on_dequeued/on_resolved
        // must observe the increments (otherwise the counters underflow and
        // flush()/the sleep gates wedge). Lock order state → signal is used
        // nowhere in reverse.
        t.queue_depth.store(depth, Ordering::Relaxed);
        t.max_queue_depth.fetch_max(depth as u64, Ordering::Relaxed);
        shared.on_enqueued();
        drop(state);
        ticket
    }

    /// Pops the earliest-deadline batch, classifies it, publishes the
    /// verdicts and resolves the waiting tickets. Returns the number of
    /// queue entries consumed (classified + shed); 0 means the queue was
    /// empty. `stolen` marks executions by a non-home batcher thread.
    pub(crate) fn process_one_batch(
        &self,
        ws: &mut Workspace,
        cfg: &ServiceConfig,
        shared: &ServiceShared,
        stolen: bool,
    ) -> usize {
        let t = &self.telemetry;
        let mut shed_groups: Vec<Vec<Sender<Verdict>>> = Vec::new();
        let batch: Vec<Pending> = {
            let mut state = self.state.lock().expect("shard state");
            let mut batch = Vec::new();
            let now = Instant::now();
            // Deadline feasibility: an entry admitted to this batch will
            // resolve after roughly the whole batch's service time, so
            // entries whose deadline falls inside that horizon can no
            // longer be served in time.
            let expect = cfg.max_batch.min(state.heap.len());
            let est = Duration::from_nanos(t.ewma_image_ns.load(Ordering::Relaxed) * expect as u64);
            while batch.len() < cfg.max_batch {
                let Some(p) = state.heap.pop() else { break };
                if now + est > p.deadline {
                    match cfg.overload {
                        OverloadPolicy::Shed => {
                            t.shed_late.fetch_add(1, Ordering::Relaxed);
                            if let Some(group) = state.waiters.remove(&p.key) {
                                shed_groups.push(group);
                            }
                            continue;
                        }
                        OverloadPolicy::Degrade => {
                            // Late work rides the cheaper tier instead of
                            // being rejected.
                            let degrade = self.degraded_tier.is_some() && !p.degraded;
                            if degrade {
                                t.degraded.fetch_add(1, Ordering::Relaxed);
                            }
                            batch.push(Pending {
                                degraded: p.degraded || degrade,
                                ..p
                            });
                        }
                        OverloadPolicy::Block => batch.push(p),
                    }
                } else {
                    batch.push(p);
                }
            }
            t.queue_depth.store(state.heap.len(), Ordering::Relaxed);
            batch
        };
        let consumed = batch.len() + shed_groups.len();
        if consumed == 0 {
            return 0;
        }
        shared.on_dequeued(consumed);

        // Resolve shed groups immediately (no CNN pass).
        let shed_count = shed_groups.len();
        for group in shed_groups {
            for waiter in group {
                let _ = waiter.send(Verdict::Shed);
            }
        }

        let mut resolved = shed_count;
        if !batch.is_empty() {
            resolved += batch.len();
            self.classify_and_publish(&batch, ws, shared, stolen);
        }
        self.space.notify_all();
        shared.on_resolved(resolved);
        consumed
    }

    /// Runs the CNN over one formed batch (splitting tiers if mixed),
    /// memoizes, resolves waiters and records telemetry.
    fn classify_and_publish(
        &self,
        batch: &[Pending],
        ws: &mut Workspace,
        shared: &ServiceShared,
        stolen: bool,
    ) {
        let t = &self.telemetry;
        let started = Instant::now();
        let mut verdicts: Vec<(u64, f32)> = Vec::with_capacity(batch.len());
        for tier_degraded in [false, true] {
            let members: Vec<&Pending> = batch
                .iter()
                .filter(|p| p.degraded == tier_degraded)
                .collect();
            if members.is_empty() {
                continue;
            }
            let classifier = if tier_degraded {
                self.degraded_tier
                    .as_ref()
                    .expect("degraded entries require the int8 tier")
            } else {
                self.memo.classifier()
            };
            let input = classifier.input_size();
            let shape = Shape::new(
                members.len(),
                percival_core::arch::INPUT_CHANNELS,
                input,
                input,
            );
            let mut tensor = Tensor::from_vec(shape, ws.take(shape.count()));
            for (i, p) in members.iter().enumerate() {
                tensor.copy_sample_from(i, &p.tensor, 0);
            }
            let probs = classifier.classify_tensor_with(&tensor, ws);
            ws.recycle(tensor.into_vec());
            for (p, &p_ad) in members.iter().zip(probs.iter()) {
                verdicts.push((p.key, p_ad));
            }
        }
        let elapsed = started.elapsed();
        let per_image = elapsed / batch.len() as u32;
        t.observe_image_cost(per_image.as_nanos() as u64);
        t.batches.fetch_add(1, Ordering::Relaxed);
        t.batched_images
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        if stolen {
            t.stolen_batches.fetch_add(1, Ordering::Relaxed);
        }

        // Publish: memoize first, then resolve the single-flight groups
        // under the state lock so no submitter can observe a removed group
        // before the cache knows the answer.
        for &(key, p_ad) in &verdicts {
            self.memo.insert(key, p_ad);
        }
        let enqueued_at: HashMap<u64, Instant> =
            batch.iter().map(|p| (p.key, p.enqueued)).collect();
        let resolve_time = Instant::now();
        let mut state = self.state.lock().expect("shard state");
        for &(key, p_ad) in &verdicts {
            let pred = self.prediction(p_ad, per_image);
            if let Some(group) = state.waiters.remove(&key) {
                if let Some(&enqueued) = enqueued_at.get(&key) {
                    shared
                        .telemetry
                        .latency
                        .record(resolve_time.duration_since(enqueued));
                }
                for waiter in group {
                    let _ = waiter.send(Verdict::Classified(pred));
                }
            }
        }
    }

    pub(crate) fn report(&self) -> crate::telemetry::ShardReport {
        self.telemetry.report(self.index)
    }

    /// Wakes any submitter parked on backpressure (shutdown path).
    pub(crate) fn release_blocked(&self) {
        // Take the state lock so a submitter between its shutdown check
        // and `space.wait` cannot miss the wakeup.
        let _state = self.state.lock().expect("shard state");
        self.space.notify_all();
    }
}
