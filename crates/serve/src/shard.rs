//! One shard: a thin serving policy around the shared flight-control core.
//!
//! Shards never talk to each other. The router sends every submission of a
//! given creative to the same shard, so memoization and single-flight
//! grouping need no cross-shard coordination; work stealing moves *compute*
//! to a loaded shard's queue (an idle batcher runs the victim shard's
//! batch against the victim's own cache and tickets) rather than moving
//! queue entries between shards.
//!
//! Since the flight-control refactor a shard no longer parallels
//! `percival_core::engine` — both instantiate the same audited
//! [`FlightTable`] (`percival_core::flight`), which owns the pending
//! queue, the single-flight groups, the verdict memo and the
//! memoize-before-unpark publish protocol. What remains here is pure
//! serving policy:
//!
//! - the [`Edf`] queue discipline (earliest deadline first, FIFO within a
//!   deadline, tighter coalesced deadlines re-prioritize the group);
//! - the admission gate implementing the `Shed | Degrade | Block`
//!   overload policies;
//! - EWMA-based deadline-feasibility shedding at batch formation;
//! - the mixed-tier (f32 / int8) batched forward pass.

use crate::service::{OverloadPolicy, ServeTicket, ServiceConfig, ServiceShared, Verdict};
use crate::telemetry::ShardReport;
use percival_core::flight::{
    AdmissionHint, Edf, EdfPrio, FlightEntry, FlightProbe, FlightTable, Formed, Gate,
};
use percival_core::{Classifier, MemoizedClassifier, Precision, Prediction};
use percival_imgcodec::HashedBitmap;
use percival_nn::PlanProfile;
use percival_tensor::gemm_i8::scale_for_max;
use percival_tensor::ingest::{normalize_into, quantize_planar_from_u8};
use percival_tensor::workspace::with_thread_workspace;
use percival_tensor::{Shape, Tensor, Workspace};
use percival_util::telem::{self, StageKind};
use percival_util::LatencyHistogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub(crate) struct Shard {
    pub(crate) index: usize,
    /// Int8 tier for [`OverloadPolicy::Degrade`]; `None` when the primary
    /// tier already runs int8 or the policy never degrades.
    degraded_tier: Option<Classifier>,
    /// The shared protocol core: EDF queue, single-flight groups, verdict
    /// memo and the wait-free counter block.
    table: FlightTable<Edf, Verdict>,
    /// Admission-to-verdict latency of this shard's classified requests.
    /// Shard-local so the publish path never contends on a service-wide
    /// recorder; `ClassificationService::report` merges the shards'
    /// snapshots ([`percival_util::HistogramSnapshot::merge`]).
    latency: LatencyHistogram,
    seq: AtomicU64,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        memo: Arc<MemoizedClassifier>,
        degraded_tier: Option<Classifier>,
    ) -> Self {
        Shard {
            index,
            degraded_tier,
            table: FlightTable::new(memo),
            latency: LatencyHistogram::default(),
            seq: AtomicU64::new(0),
        }
    }

    /// The shard-local verdict cache over the primary tier's classifier.
    pub(crate) fn memo(&self) -> &Arc<MemoizedClassifier> {
        self.table.memo()
    }

    fn prediction(&self, p_ad: f32, elapsed: Duration) -> Prediction {
        Prediction::from_probability(p_ad, self.memo().classifier().threshold(), elapsed)
    }

    /// Entries currently queued (used by stealing scans and reports).
    pub(crate) fn depth(&self) -> usize {
        self.table.depth()
    }

    /// Admits one request: cache hit and single-flight merges resolve or
    /// attach immediately (a tighter deadline re-prioritizes the merged
    /// group); otherwise the request joins the EDF queue, subject to the
    /// overload policy when the queue is full. The key comes pre-computed
    /// with the [`HashedBitmap`] (hashed exactly once, privately, inside
    /// the wrapper — callers cannot pair foreign keys with pixels).
    pub(crate) fn submit(
        &self,
        img: &HashedBitmap<'_>,
        deadline_in: Duration,
        cfg: &ServiceConfig,
        shared: &ServiceShared,
    ) -> ServeTicket {
        let key = img.key();
        let bitmap = img.bitmap();
        let (tx, rx) = channel();
        let input_size = self.memo().classifier().input_size();
        let now = Instant::now();
        let prio = EdfPrio {
            deadline: now + deadline_in,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            enqueued: now,
            degraded: false,
        };
        let counters = self.table.counters();
        self.table.submit(
            key,
            prio,
            tx,
            |p_ad| Verdict::Classified(self.prediction(p_ad, Duration::ZERO)),
            // The submitting thread does the u8-domain resize only; the
            // batcher normalizes (or quantizes) straight into the batch
            // buffer at formation time. Sampled requests report the resize
            // as a Preprocess span (the hook registers the key first).
            || {
                let start = telem::is_sampled(key).then(telem::now_ns);
                let sample =
                    with_thread_workspace(|ws| Classifier::resize_to(bitmap, input_size, ws));
                if let Some(start) = start {
                    let dur = telem::now_ns().saturating_sub(start);
                    telem::emit(key, StageKind::Preprocess, start, dur);
                }
                sample
            },
            // The overload gate: consulted under the state lock with the
            // live queue depth before a new single-flight group is queued.
            |depth, prio| {
                // Shed during shutdown before anything else — a submission
                // admitted after the batchers exit would never resolve.
                // (Unreachable through the owned-service API, where Drop's
                // exclusive borrow excludes in-flight submissions, but kept
                // as the old shard did: it hardens any future shared-handle
                // or explicit-shutdown surface for free.)
                if shared.is_shutdown() {
                    return Gate::Reject(Verdict::Shed);
                }
                if depth < cfg.queue_capacity {
                    return Gate::Admit;
                }
                match cfg.overload {
                    OverloadPolicy::Shed => Gate::Reject(Verdict::Shed),
                    OverloadPolicy::Degrade | OverloadPolicy::Block => {
                        // `Degrade` demotes instead of bounding the queue,
                        // so it needs a hard memory backstop: far past
                        // capacity it falls back to backpressure (never
                        // rejection — "Degrade never sheds" holds).
                        let block_at = match cfg.overload {
                            OverloadPolicy::Block => cfg.queue_capacity,
                            _ => cfg.queue_capacity.saturating_mul(4),
                        };
                        if cfg.overload == OverloadPolicy::Degrade && self.degraded_tier.is_some() {
                            prio.degraded = true;
                        }
                        if depth >= block_at {
                            if shared.is_shutdown() {
                                Gate::Reject(Verdict::Shed)
                            } else {
                                // Backpressure: park until a batch drains;
                                // the table re-runs coalesce/recheck/gate
                                // on every wake.
                                Gate::Wait
                            }
                        } else {
                            Gate::Admit
                        }
                    }
                }
            },
            // Runs under the state lock right after the push: an
            // already-awake batcher can pop this entry the instant the lock
            // drops, and its on_dequeued/on_resolved must observe the
            // increment (otherwise the counters underflow and flush()/the
            // sleep gates wedge). Lock order state → signal is used nowhere
            // in reverse.
            |_depth, prio| {
                if prio.degraded {
                    counters.note_degraded();
                }
                shared.on_enqueued();
            },
        );
        ServeTicket { rx }
    }

    /// A cheap admission probe for renderer-side feedback (no queue
    /// mutation, no submission): reports memoized verdicts, in-flight
    /// creatives that would coalesce, and — under the `Shed` policy —
    /// whether a fresh submission would be rejected at admission or could
    /// no longer meet its deadline. Under the `Block` policy a saturated
    /// queue instead reports the expected backpressure
    /// ([`AdmissionHint::WouldBlock`]): the EWMA service estimate over the
    /// depth a parked submitter must wait out, so latency-sensitive hooks
    /// can skip rather than stall a render thread. `Degrade` always admits
    /// (work is demoted, never lost), so its hint stays a memo lookup.
    pub(crate) fn admission_hint(&self, key: u64, cfg: &ServiceConfig) -> AdmissionHint<Verdict> {
        if cfg.overload == OverloadPolicy::Degrade {
            // Degrade always admits (possibly demoted) — skipping would
            // lose work it would serve — so the hint is just a memo-cache
            // lookup; additionally taking the flight-table state lock to
            // distinguish in-flight from queueable would buy nothing.
            return match self.memo().cached(key) {
                Some(p_ad) => AdmissionHint::Cached(Verdict::Classified(
                    self.prediction(p_ad, Duration::ZERO),
                )),
                None => AdmissionHint::Admit,
            };
        }
        match self.table.probe(key) {
            FlightProbe::Cached(p_ad) => {
                AdmissionHint::Cached(Verdict::Classified(self.prediction(p_ad, Duration::ZERO)))
            }
            // Coalescing is free: the group's CNN pass is already paid for.
            FlightProbe::InFlight => AdmissionHint::Admit,
            FlightProbe::Queueable { depth } => match cfg.overload {
                OverloadPolicy::Shed => {
                    if depth >= cfg.queue_capacity {
                        return AdmissionHint::WouldShed;
                    }
                    // Deadline feasibility: a fresh entry waits behind
                    // `depth` queued images, so if the EWMA service
                    // estimate for that backlog already exceeds the
                    // deadline it would be shed at batch formation anyway.
                    let est = Duration::from_nanos(
                        self.table.counters().ewma_image_ns() * (depth as u64 + 1),
                    );
                    if est > cfg.deadline {
                        AdmissionHint::WouldShed
                    } else {
                        AdmissionHint::Admit
                    }
                }
                OverloadPolicy::Block => {
                    if depth < cfg.queue_capacity {
                        return AdmissionHint::Admit;
                    }
                    // The gate would park this submitter until the queue
                    // drains below capacity: roughly the excess backlog
                    // (plus this entry) at the EWMA per-image rate.
                    let excess = (depth + 1 - cfg.queue_capacity) as u64;
                    AdmissionHint::WouldBlock {
                        est_wait: Duration::from_nanos(
                            self.table.counters().ewma_image_ns() * excess,
                        ),
                    }
                }
                OverloadPolicy::Degrade => unreachable!("handled above"),
            },
        }
    }

    /// Pops the earliest-deadline batch, classifies it, publishes the
    /// verdicts and resolves the waiting tickets. Returns the number of
    /// queue entries consumed (classified + shed); 0 means the queue was
    /// empty. `stolen` marks executions by a non-home batcher thread.
    pub(crate) fn process_one_batch(
        &self,
        ws: &mut Workspace,
        cfg: &ServiceConfig,
        shared: &ServiceShared,
        stolen: bool,
    ) -> usize {
        let counters = self.table.counters();
        let now = Instant::now();
        let ewma = counters.ewma_image_ns();
        // Deadline feasibility at formation: an entry admitted to this
        // batch resolves after roughly the whole batch's service time, so
        // entries whose deadline falls inside that horizon can no longer be
        // served in time. What happens to them is overload policy.
        let formed = self.table.form_batch(cfg.max_batch, |mut e, ctx| {
            let est = Duration::from_nanos(ewma * ctx.expected as u64);
            if now + est > e.prio.deadline {
                match cfg.overload {
                    OverloadPolicy::Shed => return Formed::Shed(e),
                    OverloadPolicy::Degrade => {
                        // Late work rides the cheaper tier instead of being
                        // rejected.
                        if self.degraded_tier.is_some() && !e.prio.degraded {
                            e.prio.degraded = true;
                            counters.note_degraded();
                        }
                    }
                    OverloadPolicy::Block => {}
                }
            }
            Formed::Keep(e)
        });
        let consumed = formed.batch.len() + formed.shed.len();
        if consumed == 0 {
            return 0;
        }
        shared.on_dequeued(consumed);
        let tracing = telem::enabled();

        // Resolve shed groups immediately (no CNN pass). A sampled shed
        // request still ends here: close its trace.
        let shed_count = formed.shed.len();
        for (key, group) in formed.shed {
            for tx in group {
                let _ = tx.send(Verdict::Shed);
            }
            if tracing {
                if let Some(start_ns) = telem::complete(key) {
                    let end = telem::now_ns();
                    telem::emit(
                        key,
                        StageKind::EndToEnd,
                        start_ns,
                        end.saturating_sub(start_ns),
                    );
                }
            }
        }

        let mut resolved = shed_count;
        if !formed.batch.is_empty() {
            // True queue-wait accounting (push → formation), per entry.
            let mut sampled: Vec<u64> = Vec::new();
            for e in &formed.batch {
                let wait_ns = e.enqueued_at.elapsed().as_nanos() as u64;
                counters.note_queue_wait(wait_ns);
                if tracing && telem::is_sampled(e.key) {
                    let t = telem::now_ns();
                    telem::emit(
                        e.key,
                        StageKind::QueueWait,
                        t.saturating_sub(wait_ns),
                        wait_ns,
                    );
                    sampled.push(e.key);
                }
            }
            resolved += formed.batch.len();
            self.classify_and_publish(&formed.batch, ws, stolen, now, &sampled);
            counters.note_service(now.elapsed().as_nanos() as u64);
            // The queued byte samples are spent; return them to the free
            // list so warm formation cycles stay allocation-free.
            for e in formed.batch {
                ws.recycle_u8(e.sample.into_data());
            }
        }
        self.table.signal_space();
        shared.on_resolved(resolved);
        consumed
    }

    /// Runs the CNN over one formed batch (splitting tiers if mixed), then
    /// hands the verdicts to the flight table's memoize-before-unpark
    /// publish protocol. `formation_started` anchors the flight recorder's
    /// `BatchForm` span and `sampled` carries the batch members whose
    /// traces are being recorded.
    fn classify_and_publish(
        &self,
        batch: &[FlightEntry<EdfPrio>],
        ws: &mut Workspace,
        stolen: bool,
        formation_started: Instant,
        sampled: &[u64],
    ) {
        let counters = self.table.counters();
        let started = Instant::now();
        if !sampled.is_empty() {
            let form_ns = (started - formation_started).as_nanos() as u64;
            let t = telem::now_ns();
            for &key in sampled {
                telem::emit(
                    key,
                    StageKind::BatchForm,
                    t.saturating_sub(form_ns),
                    form_ns,
                );
            }
        }
        // A sampled member rides this batch: run the forward passes
        // observed and lay the per-op totals out as a sequential PlanOp
        // timeline (one profile across both tiers — the indices line up,
        // the totals are the batch's true per-op cost).
        let profile = (!sampled.is_empty()).then(PlanProfile::new);
        let classify_start = telem::now_ns();
        let mut verdicts: Vec<(u64, f32)> = Vec::with_capacity(batch.len());
        for tier_degraded in [false, true] {
            let members: Vec<&FlightEntry<EdfPrio>> = batch
                .iter()
                .filter(|e| e.prio.degraded == tier_degraded)
                .collect();
            if members.is_empty() {
                continue;
            }
            let classifier = if tier_degraded {
                self.degraded_tier
                    .as_ref()
                    .expect("degraded entries require the int8 tier")
            } else {
                self.memo().classifier()
            };
            let input = classifier.input_size();
            let per_sample = percival_core::arch::INPUT_CHANNELS * input * input;
            let probs = if classifier.precision() == Precision::Int8 {
                // Quantize each member's bytes straight into the tier's i8
                // batch — the activation scale derives from the byte-domain
                // max, so the f32 input plane never exists on this tier.
                let mut qdata = ws.take_i8(members.len() * per_sample);
                let mut maxes = ws.take(members.len());
                for (i, e) in members.iter().enumerate() {
                    maxes[i] = e.sample.max_abs();
                    quantize_planar_from_u8(
                        e.sample.data(),
                        input,
                        scale_for_max(maxes[i]),
                        &mut qdata[i * per_sample..(i + 1) * per_sample],
                    );
                }
                let probs = match &profile {
                    Some(p) => classifier.classify_quantized_observed(&qdata, &maxes, ws, p),
                    None => classifier.classify_quantized_with(&qdata, &maxes, ws),
                };
                ws.recycle_i8(qdata);
                ws.recycle(maxes);
                probs
            } else {
                let shape = Shape::new(
                    members.len(),
                    percival_core::arch::INPUT_CHANNELS,
                    input,
                    input,
                );
                let mut tensor = Tensor::from_vec(shape, ws.take(shape.count()));
                for (i, e) in members.iter().enumerate() {
                    normalize_into(e.sample.data(), input, tensor.sample_mut(i));
                }
                let probs = match &profile {
                    Some(p) => classifier.classify_tensor_observed(&tensor, ws, p),
                    None => classifier.classify_tensor_with(&tensor, ws),
                };
                ws.recycle(tensor.into_vec());
                probs
            };
            for (e, &p_ad) in members.iter().zip(probs.iter()) {
                verdicts.push((e.key, p_ad));
            }
        }
        if let Some(profile) = &profile {
            for &key in sampled {
                let mut cursor = classify_start;
                for stat in profile.report() {
                    telem::emit(
                        key,
                        StageKind::PlanOp {
                            index: stat.index as u8,
                            kind: stat.kind,
                        },
                        cursor,
                        stat.total_ns,
                    );
                    cursor += stat.total_ns;
                }
            }
        }
        let elapsed = started.elapsed();
        let per_image = elapsed / batch.len() as u32;
        counters.observe_image_cost(per_image.as_nanos() as u64);
        if stolen {
            counters.note_stolen_batch();
        }

        let enqueued_at: HashMap<u64, Instant> =
            batch.iter().map(|e| (e.key, e.prio.enqueued)).collect();
        let resolve_time = Instant::now();
        let tracing = telem::enabled();
        let publish_start = tracing.then(telem::now_ns);
        let mut finished: Vec<(u64, u64)> = Vec::new();
        self.table.publish(
            &verdicts,
            |_key, p_ad| Verdict::Classified(self.prediction(p_ad, per_image)),
            |key| {
                if let Some(&enqueued) = enqueued_at.get(&key) {
                    self.latency.record(resolve_time.duration_since(enqueued));
                }
                if tracing {
                    if let Some(start_ns) = telem::complete(key) {
                        finished.push((key, start_ns));
                    }
                }
            },
        );
        if let Some(publish_start) = publish_start {
            let publish_ns = telem::now_ns().saturating_sub(publish_start);
            for &key in sampled {
                telem::emit(key, StageKind::Publish, publish_start, publish_ns);
            }
            for (key, start_ns) in finished {
                let end = telem::now_ns();
                telem::emit(
                    key,
                    StageKind::EndToEnd,
                    start_ns,
                    end.saturating_sub(start_ns),
                );
            }
        }
    }

    pub(crate) fn report(&self) -> ShardReport {
        ShardReport::from_snapshot(
            self.index,
            self.table.counters().snapshot(),
            self.latency.snapshot(),
        )
    }

    /// Resets the shard's latency recorder (between load phases).
    pub(crate) fn reset_latency(&self) {
        self.latency.reset();
    }

    /// Wakes any submitter parked on backpressure (shutdown path).
    pub(crate) fn release_blocked(&self) {
        self.table.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use percival_core::arch::percival_net_slim;
    use percival_core::flight::Gate;
    use percival_nn::init::kaiming_init;
    use percival_util::Pcg32;
    use std::sync::mpsc::channel;

    fn shard() -> Shard {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(3));
        let memo = Arc::new(MemoizedClassifier::new(Classifier::new(model, 32), 64));
        Shard::new(0, memo, None)
    }

    /// Queues a key directly into the shard's flight table (no batcher is
    /// running, so the queue depth is fully deterministic).
    fn enqueue(s: &Shard, key: u64, seq: u64) {
        let now = Instant::now();
        let (tx, _rx) = channel();
        s.table.submit(
            key,
            EdfPrio {
                deadline: now + Duration::from_secs(600),
                seq,
                enqueued: now,
                degraded: false,
            },
            tx,
            |_p| Verdict::Shed,
            || percival_tensor::ResizedU8::from_raw(vec![0; 4], 1),
            |_, _| Gate::Admit,
            |_, _| {},
        );
    }

    #[test]
    fn block_policy_hint_reports_expected_backpressure() {
        let s = shard();
        let cfg = ServiceConfig {
            overload: OverloadPolicy::Block,
            queue_capacity: 1,
            ..Default::default()
        };
        // Below capacity: admit.
        assert_eq!(s.admission_hint(99, &cfg), AdmissionHint::Admit);
        // Warm the EWMA to 1 ms/image so the estimate is non-trivial.
        s.table.counters().observe_image_cost(1_000_000);
        enqueue(&s, 1, 0);
        // An in-flight key coalesces for free — never reported as blocking.
        assert_eq!(s.admission_hint(1, &cfg), AdmissionHint::Admit);
        // A fresh key behind a saturated queue: one excess entry must
        // drain, so the estimate is one EWMA step.
        match s.admission_hint(2, &cfg) {
            AdmissionHint::WouldBlock { est_wait } => {
                assert_eq!(est_wait, Duration::from_millis(1));
            }
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        enqueue(&s, 2, 1);
        match s.admission_hint(3, &cfg) {
            AdmissionHint::WouldBlock { est_wait } => {
                assert_eq!(
                    est_wait,
                    Duration::from_millis(2),
                    "two excess entries, two EWMA steps"
                );
            }
            other => panic!("expected WouldBlock, got {other:?}"),
        }
    }

    #[test]
    fn shed_and_degrade_hints_are_unchanged_by_the_block_extension() {
        let s = shard();
        // Degrade: always a memo lookup, even with a saturated queue.
        let degrade = ServiceConfig {
            overload: OverloadPolicy::Degrade,
            queue_capacity: 1,
            ..Default::default()
        };
        enqueue(&s, 10, 0);
        enqueue(&s, 11, 1);
        assert_eq!(s.admission_hint(12, &degrade), AdmissionHint::Admit);
        // Shed: saturation still reports WouldShed, never WouldBlock.
        let shed = ServiceConfig {
            overload: OverloadPolicy::Shed,
            queue_capacity: 1,
            ..Default::default()
        };
        assert_eq!(s.admission_hint(12, &shed), AdmissionHint::WouldShed);
    }
}
