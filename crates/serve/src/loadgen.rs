//! Deterministic synthetic-traffic generation for the serving layer.
//!
//! Traffic is synthesized from the workspace's procedural web
//! ([`percival_webgen`]): a pool of distinct ad and non-ad creatives,
//! replayed under a Zipfian popularity distribution (ad networks serve the
//! same creative into many slots — the memoization story of the paper) with
//! an open-loop arrival process: requests fire at scheduled instants
//! regardless of how fast the service answers, which is what exposes
//! queueing collapse and shedding behavior under overload. Everything
//! derives from one `u64` seed — creative pixels, popularity ranks, arrival
//! jitter — so a run's *workload* is bit-reproducible; only timing-derived
//! outcomes (which requests shed under `Shed`) vary within bounds.
//!
//! [`TrafficPattern`] picks the arrival process: steady RPS, a linear ramp,
//! square-wave bursts, or closed-loop (submit as fast as the service
//! resolves; used for peak-throughput measurement).

use crate::service::{ClassificationService, ServeTicket, Verdict};
use crate::telemetry::ServiceReport;
use percival_core::cascade::{Cascade, CascadeDecision, Tier};
use percival_core::flight::AdmissionHint;
use percival_imgcodec::Bitmap;
use percival_renderer::StructuralFeatures;
use percival_util::telem::{self, StageKind};
use percival_util::{HistogramSnapshot, Pcg32};
use percival_webgen::adnet;
use percival_webgen::images::AdCues;
use percival_webgen::{generate_ad, generate_nonad, AdStyle, NonAdStyle, Script};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The arrival process of a load-generator run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Closed loop: submit the next request as soon as the previous batch
    /// of submissions is accepted (peak-throughput mode; no deadlines are
    /// stressed because arrival adapts to service speed).
    ClosedLoop,
    /// Open loop at a constant rate (requests per second).
    Steady(f64),
    /// Open loop ramping linearly from the first rate to the second over
    /// the run.
    Ramp(f64, f64),
    /// Open loop alternating `on` RPS for `period` then idle for `period`
    /// (square-wave bursts).
    Bursty {
        /// Rate while the burst is on.
        rps: f64,
        /// Burst / gap length.
        period: Duration,
    },
}

/// Load-generator knobs. Everything is derived from `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Master seed for creatives, popularity and jitter.
    pub seed: u64,
    /// Distinct creatives in the pool.
    pub creatives: usize,
    /// Fraction of the pool that is ad creatives.
    pub ad_fraction: f64,
    /// Zipf exponent over creative popularity ranks; `0.0` is uniform
    /// (with replacement), `1.0+` concentrates traffic on a few hot
    /// creatives (exercises the memo cache and single-flight paths), and
    /// any negative value short-circuits to round-robin — each creative
    /// exactly once per `creatives` requests, the distinct-traffic mode
    /// peak-throughput measurement uses (no dedup possible).
    pub zipf_s: f64,
    /// Total requests to submit.
    pub requests: usize,
    /// Arrival process.
    pub pattern: TrafficPattern,
    /// Creative edge length in pixels (square bitmaps).
    pub edge: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 7,
            creatives: 64,
            ad_fraction: 0.5,
            zipf_s: 0.9,
            requests: 512,
            pattern: TrafficPattern::ClosedLoop,
            edge: 48,
        }
    }
}

/// Outcome of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests submitted.
    pub submitted: usize,
    /// Requests classified (admitted and answered).
    pub classified: usize,
    /// Classified requests whose verdict was "ad".
    pub ads: usize,
    /// Requests rejected by the overload policy.
    pub shed: usize,
    /// Tickets that never resolved — must be zero; anything else is a
    /// lost-request bug in the service.
    pub lost: usize,
    /// Wall time from first submission to full resolution.
    pub wall: Duration,
    /// Achieved throughput over `wall`.
    pub achieved_rps: f64,
    /// Admission-to-verdict latency of classified requests (from the
    /// service's own histogram, reset at run start).
    pub latency: HistogramSnapshot,
    /// Full per-shard service counters at run end.
    pub service: ServiceReport,
}

impl core::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "loadgen: {} submitted  {} classified ({} ads)  {} shed  {} lost  {:.0} req/s over {:?}",
            self.submitted, self.classified, self.ads, self.shed, self.lost, self.achieved_rps,
            self.wall
        )?;
        write!(f, "{}", self.service)
    }
}

/// Synthesizes the deterministic creative pool for a config: mixed ad and
/// non-ad creatives cycling through every webgen style.
pub fn synthesize_creatives(cfg: &TrafficConfig) -> Vec<Bitmap> {
    let mut rng = Pcg32::seed_from_u64(cfg.seed);
    let ads = ((cfg.creatives as f64) * cfg.ad_fraction).round() as usize;
    (0..cfg.creatives)
        .map(|i| {
            if i < ads {
                let style = AdStyle::ALL[i % AdStyle::ALL.len()];
                generate_ad(
                    &mut rng,
                    cfg.edge,
                    cfg.edge,
                    Script::Latin,
                    style,
                    AdCues::native(),
                )
            } else {
                let style = NonAdStyle::ALL[i % NonAdStyle::ALL.len()];
                generate_nonad(&mut rng, cfg.edge, cfg.edge, Script::Latin, style)
            }
        })
        .collect()
}

/// The per-request creative indices (Zipfian over popularity ranks, rank
/// order shuffled so hot creatives are spread across ad/non-ad classes).
pub fn request_sequence(cfg: &TrafficConfig) -> Vec<usize> {
    if cfg.zipf_s < 0.0 {
        return (0..cfg.requests).map(|i| i % cfg.creatives).collect();
    }
    let mut rng = Pcg32::seed_from_u64(cfg.seed ^ 0x5EED_BEEF);
    // Rank r (1-based) gets weight r^-s; the CDF inverts via binary search.
    let mut cdf = Vec::with_capacity(cfg.creatives);
    let mut total = 0.0f64;
    for rank in 1..=cfg.creatives {
        total += (rank as f64).powf(-cfg.zipf_s);
        cdf.push(total);
    }
    // Map popularity ranks onto creative indices in shuffled order.
    let mut order: Vec<usize> = (0..cfg.creatives).collect();
    rng.shuffle(&mut order);
    (0..cfg.requests)
        .map(|_| {
            let u = rng.next_f64() * total;
            let rank = cdf.partition_point(|&c| c < u).min(cfg.creatives - 1);
            order[rank]
        })
        .collect()
}

/// The scheduled arrival offset of each request for a pattern; empty for
/// closed-loop traffic.
pub fn arrival_schedule(cfg: &TrafficConfig) -> Vec<Duration> {
    let n = cfg.requests;
    match cfg.pattern {
        TrafficPattern::ClosedLoop => Vec::new(),
        TrafficPattern::Steady(rps) => (0..n)
            .map(|i| Duration::from_secs_f64(i as f64 / rps.max(1e-9)))
            .collect(),
        TrafficPattern::Ramp(r0, r1) => {
            // Cumulative arrivals Λ(t) = r0·t + (r1−r0)·t²/(2T) with T set
            // so Λ(T) = n; request i fires at Λ⁻¹(i).
            let total_t = 2.0 * n as f64 / (r0 + r1).max(1e-9);
            let a = (r1 - r0) / (2.0 * total_t);
            (0..n)
                .map(|i| {
                    let target = i as f64;
                    let t = if a.abs() < 1e-12 {
                        target / r0.max(1e-9)
                    } else {
                        // Positive root of a·t² + r0·t − target = 0.
                        ((r0 * r0 + 4.0 * a * target).sqrt() - r0) / (2.0 * a)
                    };
                    Duration::from_secs_f64(t.max(0.0))
                })
                .collect()
        }
        TrafficPattern::Bursty { rps, period } => {
            // Fill each on-period at `rps`, then skip one idle period.
            let per_burst = ((rps * period.as_secs_f64()).floor() as usize).max(1);
            (0..n)
                .map(|i| {
                    let burst = i / per_burst;
                    let within = (i % per_burst) as f64 / rps;
                    Duration::from_secs_f64(burst as f64 * 2.0 * period.as_secs_f64() + within)
                })
                .collect()
        }
    }
}

/// Submits one creative, instrumenting the `Hash` and `AdmissionHint`
/// stages when the request is sampled (`trace_start` is `Some`; `pending`
/// carries spans buffered by the caller, e.g. cascade tiers). Returns the
/// ticket plus the registered trace key, if this request owns a live
/// trace. A request whose verdict is already cached — or whose creative
/// already carries an in-flight trace (hot keys coalesce) — closes its
/// trace immediately under a synthetic id instead of registering.
fn traced_submit(
    service: &ClassificationService,
    bitmap: &Bitmap,
    trace_start: Option<u64>,
    pending: &mut Vec<(StageKind, u64, u64)>,
) -> (ServeTicket, Option<u64>) {
    let Some(start) = trace_start else {
        return (service.submit(bitmap), None);
    };
    let hash_start = telem::now_ns();
    let img = bitmap.hashed();
    pending.push((
        StageKind::Hash,
        hash_start,
        telem::now_ns().saturating_sub(hash_start),
    ));
    let hint_start = telem::now_ns();
    let hint = service.admission_hint_with_key(&img);
    pending.push((
        StageKind::AdmissionHint,
        hint_start,
        telem::now_ns().saturating_sub(hint_start),
    ));
    let key = img.key();
    if matches!(hint, AdmissionHint::Cached(_)) || telem::is_sampled(key) {
        // Cached verdicts resolve at submit without a publish, and a key
        // with a live trace must not be re-registered: close this
        // request's trace now, under its own synthetic id.
        telem::emit_early(start, pending);
        return (service.submit_with_key(&img), None);
    }
    telem::register(key, start);
    for &(kind, s, d) in pending.iter() {
        telem::emit(key, kind, s, d);
    }
    let submit_start = telem::now_ns();
    let ticket = service.submit_with_key(&img);
    telem::emit(
        key,
        StageKind::Submit,
        submit_start,
        telem::now_ns().saturating_sub(submit_start),
    );
    (ticket, Some(key))
}

/// Closes traces whose requests resolved without a publish (a submit-time
/// cache race): anything still registered after the run gets an `EndToEnd`
/// bounded by the end-of-run clock.
fn close_leftover_traces(traced_keys: &[u64]) {
    for &key in traced_keys {
        if let Some(s) = telem::complete(key) {
            let end = telem::now_ns();
            telem::emit(key, StageKind::EndToEnd, s, end.saturating_sub(s));
        }
    }
}

/// Runs one load-generation pass against a service and collects the
/// report. The service's latency histogram is reset at run start so the
/// report reflects only this run. With flight recording on
/// (`PERCIVAL_TRACE=N`), 1-in-N requests emit the full span chain —
/// `Hash`/`AdmissionHint` here, `QueueWait` through `EndToEnd` from the
/// shard's batcher.
pub fn run(service: &ClassificationService, cfg: &TrafficConfig) -> LoadReport {
    let creatives = synthesize_creatives(cfg);
    let sequence = request_sequence(cfg);
    let schedule = arrival_schedule(cfg);
    service.reset_latency();
    let tracing = telem::enabled();

    let start = Instant::now();
    let mut tickets: Vec<ServeTicket> = Vec::with_capacity(sequence.len());
    let mut traced_keys: Vec<u64> = Vec::new();
    for (i, &creative) in sequence.iter().enumerate() {
        if let Some(&offset) = schedule.get(i) {
            // Open loop: fire at the scheduled instant no matter how far
            // behind the service is.
            loop {
                let elapsed = start.elapsed();
                if elapsed >= offset {
                    break;
                }
                std::thread::sleep((offset - elapsed).min(Duration::from_micros(500)));
            }
        }
        let trace_start = (tracing && telem::sample_request()).then(telem::now_ns);
        let mut pending = Vec::new();
        let (ticket, traced) =
            traced_submit(service, &creatives[creative], trace_start, &mut pending);
        if let Some(key) = traced {
            traced_keys.push(key);
        }
        tickets.push(ticket);
    }
    service.flush();
    close_leftover_traces(&traced_keys);
    let wall = start.elapsed();

    let (mut classified, mut ads, mut shed, mut lost) = (0usize, 0usize, 0usize, 0usize);
    for ticket in tickets {
        match ticket.poll() {
            Some(Verdict::Classified(p)) => {
                classified += 1;
                if p.is_ad {
                    ads += 1;
                }
            }
            Some(Verdict::Shed) => shed += 1,
            None => lost += 1,
        }
    }
    let report = service.report();
    LoadReport {
        submitted: sequence.len(),
        classified,
        ads,
        shed,
        lost,
        wall,
        achieved_rps: sequence.len() as f64 / wall.as_secs_f64().max(1e-9),
        latency: report.latency,
        service: report,
    }
}

/// Request-URL and frame metadata attached to one creative in the
/// mixed-traffic cascade mode: everything the cascade's tier 0 (filter
/// match) and tier 1 (structural score) consume.
#[derive(Debug, Clone, PartialEq)]
pub struct CreativeMeta {
    /// The creative's resource URL, in the synthetic web's conventions.
    pub url: String,
    /// URL of the page (or iframe document) requesting it.
    pub source_url: String,
    /// Structural features the renderer would have extracted.
    pub structural: StructuralFeatures,
}

/// Deterministically attaches URL/frame metadata to each creative of
/// [`synthesize_creatives`]'s pool (same indexing: ads first).
///
/// The classes mirror the synthetic web: ad creatives are served by
/// list-covered networks, by the uncovered regional/long-tail networks
/// (tier 0 misses them; their IAB boxes and third-party iframes give them
/// away structurally), or as tracking pixels; non-ad creatives are organic
/// first-party photos, exception-listed placements, and first-party promos
/// in IAB boxes — the genuinely ambiguous residual only the CNN can judge.
pub fn synthesize_creative_meta(cfg: &TrafficConfig) -> Vec<CreativeMeta> {
    let mut rng = Pcg32::seed_from_u64(cfg.seed ^ 0xCA5_CADE);
    let ads = ((cfg.creatives as f64) * cfg.ad_fraction).round() as usize;
    let iab = [(728u32, 90u32), (300, 250), (160, 600), (468, 60)];
    (0..cfg.creatives)
        .map(|i| {
            let site = format!("news{}.web", i % 3);
            let source_url = format!("http://{site}/");
            if i < ads {
                let (w, h) = iab[i % iab.len()];
                match i % 4 {
                    // Covered third-party networks: tier-0 blocks.
                    0 | 3 => {
                        let n = &adnet::NETWORKS[i % 3];
                        CreativeMeta {
                            url: format!(
                                "http://{}{}{w}x{h}_{}.png",
                                n.host,
                                n.path,
                                rng.next_below(100_000)
                            ),
                            source_url,
                            structural: StructuralFeatures::from_parts(w, h, 1, true),
                        }
                    }
                    // Uncovered networks: the list misses them, the
                    // structure (IAB box, third-party iframe) does not.
                    1 => {
                        let n = &adnet::NETWORKS[3 + (i / 4) % 4];
                        CreativeMeta {
                            url: format!(
                                "http://{}{}{w}x{h}_{}.png",
                                n.host,
                                n.path,
                                rng.next_below(100_000)
                            ),
                            source_url,
                            structural: StructuralFeatures::from_parts(w, h, 1, true),
                        }
                    }
                    // Tracking pixels: covered via `$third-party`.
                    _ => CreativeMeta {
                        url: adnet::tracker_url(&mut rng),
                        source_url,
                        structural: StructuralFeatures::from_parts(1, 1, 0, true),
                    },
                }
            } else {
                match i % 5 {
                    // First-party promos in IAB boxes, off the `/promo/`
                    // path: nothing for the list, ambiguous structure —
                    // the CNN residual.
                    3 => CreativeMeta {
                        url: format!("http://{site}/img/offer_{}.png", rng.next_below(100_000)),
                        source_url,
                        structural: StructuralFeatures::from_parts(300, 250, 0, false),
                    },
                    // Exception-listed placement: tier-0 pins it as content.
                    4 => CreativeMeta {
                        url: format!(
                            "http://adnet-alpha.web/legal/notice_{}.png",
                            rng.next_below(100_000)
                        ),
                        source_url,
                        structural: StructuralFeatures::from_parts(300, 250, 0, true),
                    },
                    // Organic first-party photos: tier-1 keeps.
                    _ => CreativeMeta {
                        url: adnet::content_url(&mut rng, &site, "png"),
                        source_url: source_url.clone(),
                        structural: StructuralFeatures::from_parts(640, 480, 0, false),
                    },
                }
            }
        })
        .collect()
}

/// Outcome of one mixed-traffic cascade run.
#[derive(Debug, Clone)]
pub struct CascadeLoadReport {
    /// Total requests generated.
    pub requests: usize,
    /// Requests blocked by a tier-0 filter rule.
    pub tier0_blocked: usize,
    /// Requests pinned as content by a tier-0 exception.
    pub tier0_exempted: usize,
    /// Requests blocked by the tier-1 structural score.
    pub tier1_blocked: usize,
    /// Requests kept by the tier-1 structural score.
    pub tier1_kept: usize,
    /// Requests submitted to the CNN service (the residual).
    pub cnn_submitted: usize,
    /// Residual requests classified (admitted and answered).
    pub classified: usize,
    /// Residual verdicts that were "ad".
    pub ads: usize,
    /// Residual requests shed by the overload policy.
    pub shed: usize,
    /// Residual tickets that never resolved (must be zero).
    pub lost: usize,
    /// Wall time from first request to full resolution.
    pub wall: Duration,
    /// Achieved throughput over `wall`.
    pub achieved_rps: f64,
    /// The per-request cascade decisions, in request order (for
    /// determinism and verdict-equivalence checks).
    pub decisions: Vec<CascadeDecision>,
    /// Full service counters at run end (includes the cascade snapshot).
    pub service: ServiceReport,
}

impl CascadeLoadReport {
    /// Requests resolved by tier 0/1, never reaching a flight queue.
    pub fn resolved_early(&self) -> usize {
        self.tier0_blocked + self.tier0_exempted + self.tier1_blocked + self.tier1_kept
    }

    /// Fraction of requests resolved without the CNN.
    pub fn early_fraction(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.resolved_early() as f64 / self.requests as f64
    }
}

impl core::fmt::Display for CascadeLoadReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "cascade loadgen: {} requests  t0 {}+{}  t1 {}+{}  cnn {} ({} classified, {} ads, {} shed)  {:.1}% early  {:.0} req/s",
            self.requests,
            self.tier0_blocked,
            self.tier0_exempted,
            self.tier1_blocked,
            self.tier1_kept,
            self.cnn_submitted,
            self.classified,
            self.ads,
            self.shed,
            self.early_fraction() * 100.0,
            self.achieved_rps,
        )?;
        write!(f, "{}", self.service)
    }
}

/// Runs one mixed-traffic pass through the cascade front-end: every
/// request consults the cascade with its URL/frame metadata; only the
/// residual is submitted to the service. The cascade is attached to the
/// service so its counters surface in the run's [`ServiceReport`].
pub fn run_cascade(
    service: &ClassificationService,
    cascade: &Arc<Cascade>,
    cfg: &TrafficConfig,
) -> CascadeLoadReport {
    let creatives = synthesize_creatives(cfg);
    let metas = synthesize_creative_meta(cfg);
    let sequence = request_sequence(cfg);
    let schedule = arrival_schedule(cfg);
    service.attach_cascade(Arc::clone(cascade));
    service.reset_latency();
    let tracing = telem::enabled();

    let start = Instant::now();
    let mut decisions = Vec::with_capacity(sequence.len());
    let mut tickets: Vec<ServeTicket> = Vec::new();
    let mut traced_keys: Vec<u64> = Vec::new();
    let (mut t0b, mut t0e, mut t1b, mut t1k) = (0usize, 0usize, 0usize, 0usize);
    for (i, &creative) in sequence.iter().enumerate() {
        if let Some(&offset) = schedule.get(i) {
            loop {
                let elapsed = start.elapsed();
                if elapsed >= offset {
                    break;
                }
                std::thread::sleep((offset - elapsed).min(Duration::from_micros(500)));
            }
        }
        let meta = &metas[creative];
        let trace_start = (tracing && telem::sample_request()).then(telem::now_ns);
        let mut pending = Vec::new();
        let decision = match trace_start {
            Some(ts) => {
                let (d, t0_ns, t1_ns) =
                    cascade.decide_timed(&meta.url, &meta.source_url, Some(&meta.structural));
                pending.push((StageKind::CascadeT0, ts, t0_ns));
                if t1_ns > 0 {
                    pending.push((StageKind::CascadeT1, ts + t0_ns, t1_ns));
                }
                d
            }
            None => cascade.decide(&meta.url, &meta.source_url, Some(&meta.structural)),
        };
        decisions.push(decision);
        let early = |count: &mut usize| {
            *count += 1;
            if let Some(ts) = trace_start {
                telem::emit_early(ts, &pending);
            }
        };
        match decision {
            CascadeDecision::Block(Tier::NetworkFilter) => early(&mut t0b),
            CascadeDecision::Keep(Tier::NetworkFilter) => early(&mut t0e),
            CascadeDecision::Block(Tier::Structural) => early(&mut t1b),
            CascadeDecision::Keep(Tier::Structural) => early(&mut t1k),
            _ => {
                let (ticket, traced) =
                    traced_submit(service, &creatives[creative], trace_start, &mut pending);
                if let Some(key) = traced {
                    traced_keys.push(key);
                }
                tickets.push(ticket);
            }
        }
    }
    service.flush();
    close_leftover_traces(&traced_keys);
    let wall = start.elapsed();

    let (mut classified, mut ads, mut shed, mut lost) = (0usize, 0usize, 0usize, 0usize);
    let cnn_submitted = tickets.len();
    for ticket in tickets {
        match ticket.poll() {
            Some(Verdict::Classified(p)) => {
                classified += 1;
                if p.is_ad {
                    ads += 1;
                }
            }
            Some(Verdict::Shed) => shed += 1,
            None => lost += 1,
        }
    }
    CascadeLoadReport {
        requests: sequence.len(),
        tier0_blocked: t0b,
        tier0_exempted: t0e,
        tier1_blocked: t1b,
        tier1_kept: t1k,
        cnn_submitted,
        classified,
        ads,
        shed,
        lost,
        wall,
        achieved_rps: sequence.len() as f64 / wall.as_secs_f64().max(1e-9),
        decisions,
        service: service.report(),
    }
}

/// Measures the service's peak closed-loop throughput on `calib` distinct
/// creatives, returning requests-per-second. Used to size overload runs
/// (e.g. "2x capacity") portably across hosts.
pub fn calibrate_capacity_rps(service: &ClassificationService, cfg: &TrafficConfig) -> f64 {
    let calib = TrafficConfig {
        pattern: TrafficPattern::ClosedLoop,
        requests: cfg.creatives,
        // Distinct creatives only: hits would overestimate capacity.
        zipf_s: -1.0,
        seed: cfg.seed ^ 0xCA11_B8A7E,
        ..*cfg
    };
    let report = run(service, &calib);
    report.achieved_rps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrafficConfig {
        TrafficConfig {
            creatives: 12,
            requests: 64,
            edge: 16,
            ..Default::default()
        }
    }

    #[test]
    fn creative_pool_is_deterministic_and_distinct() {
        let a = synthesize_creatives(&cfg());
        let b = synthesize_creatives(&cfg());
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.content_hash(), y.content_hash());
        }
        let mut hashes: Vec<u64> = a.iter().map(|b| b.content_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 12, "creatives must be distinct");
    }

    #[test]
    fn request_sequence_is_deterministic_and_skewed() {
        let c = cfg();
        let a = request_sequence(&c);
        assert_eq!(a, request_sequence(&c));
        assert!(a.iter().all(|&i| i < c.creatives));
        // Zipf 0.9 over 12 creatives: the hottest creative should appear
        // clearly more often than the uniform share.
        let mut counts = vec![0usize; c.creatives];
        for &i in &a {
            counts[i] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        assert!(max * c.creatives > a.len(), "distribution is skewed");
    }

    #[test]
    fn steady_schedule_spaces_requests_evenly() {
        let c = TrafficConfig {
            pattern: TrafficPattern::Steady(1000.0),
            requests: 10,
            ..cfg()
        };
        let s = arrival_schedule(&c);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], Duration::ZERO);
        assert_eq!(s[9], Duration::from_millis(9));
    }

    #[test]
    fn ramp_schedule_is_monotone_and_accelerating() {
        let c = TrafficConfig {
            pattern: TrafficPattern::Ramp(100.0, 1000.0),
            requests: 100,
            ..cfg()
        };
        let s = arrival_schedule(&c);
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "monotone arrivals");
        // Inter-arrival gaps shrink as the rate ramps up.
        let first_gap = s[1] - s[0];
        let last_gap = s[99] - s[98];
        assert!(last_gap < first_gap, "{last_gap:?} < {first_gap:?}");
    }

    #[test]
    fn creative_meta_is_deterministic_and_aligned_with_the_pool() {
        let c = cfg();
        let a = synthesize_creative_meta(&c);
        assert_eq!(a, synthesize_creative_meta(&c));
        assert_eq!(a.len(), c.creatives, "one meta row per creative");
        assert!(a
            .iter()
            .all(|m| !m.url.is_empty() && !m.source_url.is_empty()));
    }

    #[test]
    fn creative_meta_classes_resolve_at_their_designed_tiers() {
        use percival_core::cascade::CascadeConfig;

        let c = TrafficConfig {
            creatives: 40,
            ..cfg()
        };
        let metas = synthesize_creative_meta(&c);
        let cascade = Cascade::synthetic_with(CascadeConfig::default());
        let ads = ((c.creatives as f64) * c.ad_fraction).round() as usize;
        for (i, m) in metas.iter().enumerate() {
            let d = cascade.decide(&m.url, &m.source_url, Some(&m.structural));
            let expected = if i < ads {
                match i % 4 {
                    0 | 2 | 3 => CascadeDecision::Block(Tier::NetworkFilter),
                    _ => CascadeDecision::Block(Tier::Structural),
                }
            } else {
                match i % 5 {
                    3 => CascadeDecision::Classify,
                    4 => CascadeDecision::Keep(Tier::NetworkFilter),
                    _ => CascadeDecision::Keep(Tier::Structural),
                }
            };
            assert_eq!(d, expected, "creative {i} ({})", m.url);
        }
    }

    #[test]
    fn bursty_schedule_has_gaps() {
        let c = TrafficConfig {
            pattern: TrafficPattern::Bursty {
                rps: 1000.0,
                period: Duration::from_millis(10),
            },
            requests: 25,
            ..cfg()
        };
        let s = arrival_schedule(&c);
        // 10 requests per 10ms burst; bursts start at 0, 20ms, 40ms.
        assert_eq!(s[0], Duration::ZERO);
        assert_eq!(s[10], Duration::from_millis(20));
        assert_eq!(s[20], Duration::from_millis(40));
    }
}
