//! The serving layer plugged into the rendering pipeline, with admission
//! feedback.
//!
//! [`ServiceHook`] is the fleet-scale counterpart of
//! `percival_core::hook::PercivalHook`: decoded images are classified by a
//! sharded [`ClassificationService`] instead of a single in-process
//! engine. The difference that matters in the render path is *admission
//! feedback*: before submitting, the hook consults
//! [`ClassificationService::admission_hint`] —
//!
//! - a memoized verdict ([`AdmissionHint::Cached`]) is applied instantly,
//!   without entering the service at all;
//! - a creative the overload policy would reject
//!   ([`AdmissionHint::WouldShed`]) is skipped up front and rendered
//!   unblocked (PERCIVAL fails open, like the paper's deployment) instead
//!   of being queued, preprocessed and resolved as [`Verdict::Shed`] after
//!   the fact;
//! - under the `Block` policy, predicted backpressure beyond the hook's
//!   wait budget ([`AdmissionHint::WouldBlock`] +
//!   [`ServiceHook::with_max_wait`]) is likewise skipped rather than
//!   stalling a render thread;
//! - everything else is submitted and awaited.
//!
//! Each creative is content-hashed exactly once: the same
//! [`percival_imgcodec::HashedBitmap`] feeds the hint probe and the keyed
//! submission (`submit_with_key`).
//!
//! The hint is advisory — a concurrent burst can still shed an admitted
//! request — so shed verdicts after submission are also handled (fail
//! open) and counted separately.

use crate::service::{ClassificationService, Verdict};
use percival_core::cascade::{Cascade, CascadeDecision};
use percival_core::flight::AdmissionHint;
use percival_core::BlockPolicy;
use percival_imgcodec::Bitmap;
use percival_renderer::{ImageInterceptor, ImageMeta, InterceptAction};
use percival_util::telem::{self, emit_early as emit_early_trace, StageKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters exported by the serving hook.
#[derive(Debug, Default)]
pub struct ServiceHookStats {
    classified: AtomicU64,
    blocked: AtomicU64,
    skipped_shed: AtomicU64,
    skipped_blocked: AtomicU64,
    shed_after_admit: AtomicU64,
    skipped_small: AtomicU64,
    cascade_resolved: AtomicU64,
}

impl ServiceHookStats {
    /// Images that received a classification verdict (cached or served).
    pub fn classified(&self) -> u64 {
        self.classified.load(Ordering::Relaxed)
    }

    /// Images judged to be ads.
    pub fn blocked(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }

    /// Images never submitted because the admission hint predicted a shed
    /// (rendered unblocked; the fail-open path the hint exists for).
    pub fn skipped_shed(&self) -> u64 {
        self.skipped_shed.load(Ordering::Relaxed)
    }

    /// Images never submitted because the `Block`-policy backpressure
    /// estimate exceeded the hook's wait budget (rendered unblocked).
    pub fn skipped_blocked(&self) -> u64 {
        self.skipped_blocked.load(Ordering::Relaxed)
    }

    /// Images admitted but shed anyway (the hint is advisory).
    pub fn shed_after_admit(&self) -> u64 {
        self.shed_after_admit.load(Ordering::Relaxed)
    }

    /// Images below the size floor (tracking pixels etc.).
    pub fn skipped_small(&self) -> u64 {
        self.skipped_small.load(Ordering::Relaxed)
    }

    /// Images resolved by the cascade front-end (tier 0/1) without ever
    /// entering the admission decision tree.
    pub fn cascade_resolved(&self) -> u64 {
        self.cascade_resolved.load(Ordering::Relaxed)
    }
}

/// A rendering-pipeline interceptor backed by the sharded service.
pub struct ServiceHook {
    service: ClassificationService,
    cascade: Option<Arc<Cascade>>,
    policy: BlockPolicy,
    /// Images with an edge below this are not classified (1 disables the
    /// floor; tracking pixels are upscaled noise either way).
    min_edge: usize,
    /// Under the `Block` overload policy: the longest predicted
    /// backpressure this hook will stall a render thread for. `None`
    /// (default) always submits and waits.
    max_wait: Option<Duration>,
    stats: ServiceHookStats,
}

impl ServiceHook {
    /// Wraps a running service with the default (clear-buffer) policy.
    pub fn new(service: ClassificationService) -> Self {
        ServiceHook {
            service,
            cascade: None,
            policy: BlockPolicy::Clear,
            min_edge: 1,
            max_wait: None,
            stats: ServiceHookStats::default(),
        }
    }

    /// Puts a [`Cascade`] front-end ahead of the admission decision tree:
    /// requests tier 0/1 resolve are never hashed, never probe the hint
    /// and never enter a flight queue. The cascade is also attached to the
    /// service so its tier counters surface in the [`crate::ServiceReport`].
    pub fn with_cascade(mut self, cascade: Arc<Cascade>) -> Self {
        self.service.attach_cascade(Arc::clone(&cascade));
        self.cascade = Some(cascade);
        self
    }

    /// Sets the blocked-frame policy.
    pub fn with_policy(mut self, policy: BlockPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the minimum classified edge length.
    pub fn with_min_edge(mut self, min_edge: usize) -> Self {
        self.min_edge = min_edge.max(1);
        self
    }

    /// Bounds how long this hook will knowingly stall on `Block`-policy
    /// backpressure: when the admission hint predicts a wait beyond
    /// `max_wait`, the creative is skipped (rendered unblocked, fail open)
    /// instead of parking a render thread.
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = Some(max_wait);
        self
    }

    /// Counter access.
    pub fn stats(&self) -> &ServiceHookStats {
        &self.stats
    }

    /// The wrapped service.
    pub fn service(&self) -> &ClassificationService {
        &self.service
    }

    /// Applies the blocked-frame policy to a verdict.
    fn verdict_to_action(&self, is_ad: bool, bitmap: &mut Bitmap) -> InterceptAction {
        self.stats.classified.fetch_add(1, Ordering::Relaxed);
        if !is_ad {
            return InterceptAction::Keep;
        }
        self.stats.blocked.fetch_add(1, Ordering::Relaxed);
        match &self.policy {
            BlockPolicy::Clear => InterceptAction::Block,
            replace @ BlockPolicy::Replace(_) => {
                replace.apply(bitmap);
                InterceptAction::Keep
            }
        }
    }

    /// Resolves a served verdict (post-submission), failing open on shed.
    fn serve_verdict(&self, verdict: Verdict, bitmap: &mut Bitmap) -> InterceptAction {
        match verdict {
            Verdict::Classified(p) => self.verdict_to_action(p.is_ad, bitmap),
            Verdict::Shed => {
                self.stats.shed_after_admit.fetch_add(1, Ordering::Relaxed);
                InterceptAction::Keep
            }
        }
    }

    /// Tier 0/1 of the cascade front-end, run before the admission tree.
    /// Returns `None` when no cascade is attached or the request must fall
    /// through to the CNN. When the request is sampled (`trace_start` is
    /// `Some`), tier timings are buffered into `pending` as
    /// `CascadeT0`/`CascadeT1` spans chained from the trace start.
    fn cascade_action(
        &self,
        bitmap: &mut Bitmap,
        meta: &ImageMeta<'_>,
        trace_start: Option<u64>,
        pending: &mut Vec<(StageKind, u64, u64)>,
    ) -> Option<InterceptAction> {
        let cascade = self.cascade.as_ref()?;
        let decision = match trace_start {
            Some(start) => {
                let (decision, t0_ns, t1_ns) =
                    cascade.decide_timed(meta.url, meta.source_url, meta.structural.as_ref());
                pending.push((StageKind::CascadeT0, start, t0_ns));
                if t1_ns > 0 {
                    pending.push((StageKind::CascadeT1, start + t0_ns, t1_ns));
                }
                decision
            }
            None => cascade.decide(meta.url, meta.source_url, meta.structural.as_ref()),
        };
        match decision {
            CascadeDecision::Block(_) => {
                self.stats.cascade_resolved.fetch_add(1, Ordering::Relaxed);
                self.stats.blocked.fetch_add(1, Ordering::Relaxed);
                Some(match &self.policy {
                    BlockPolicy::Clear => InterceptAction::Block,
                    replace @ BlockPolicy::Replace(_) => {
                        replace.apply(bitmap);
                        InterceptAction::Keep
                    }
                })
            }
            CascadeDecision::Keep(_) => {
                self.stats.cascade_resolved.fetch_add(1, Ordering::Relaxed);
                Some(InterceptAction::Keep)
            }
            CascadeDecision::Classify => None,
        }
    }

    /// The single admission decision tree: size floor, then the hint.
    /// Cache hits, predicted sheds and over-budget backpressure never enter
    /// the service; only [`Slot::Pending`] creatives are actually
    /// submitted. `inspect` and `inspect_batch` both run every image
    /// through this. The content hash is computed exactly once — the same
    /// [`HashedBitmap`] feeds the hint and the keyed submission.
    ///
    /// For sampled requests, `Hash`/`AdmissionHint` spans join `pending`;
    /// paths that never reach a flight queue close the trace here with a
    /// synthetic id, while submissions register the content-hash key so the
    /// shard's publish path can close it.
    fn admit_slot(
        &self,
        bitmap: &Bitmap,
        trace_start: Option<u64>,
        pending: &mut Vec<(StageKind, u64, u64)>,
    ) -> Slot {
        if bitmap.width() < self.min_edge || bitmap.height() < self.min_edge {
            self.stats.skipped_small.fetch_add(1, Ordering::Relaxed);
            if let Some(start) = trace_start {
                emit_early_trace(start, pending);
            }
            return Slot::Done(InterceptAction::Keep);
        }
        let hash_start = trace_start.map(|_| telem::now_ns());
        let img = bitmap.hashed();
        if let Some(s) = hash_start {
            pending.push((StageKind::Hash, s, telem::now_ns().saturating_sub(s)));
        }
        let hint_start = trace_start.map(|_| telem::now_ns());
        let hint = self.service.admission_hint_with_key(&img);
        if let Some(s) = hint_start {
            pending.push((
                StageKind::AdmissionHint,
                s,
                telem::now_ns().saturating_sub(s),
            ));
        }
        let early = |slot: Slot| {
            if let Some(start) = trace_start {
                emit_early_trace(start, pending);
            }
            slot
        };
        let submit = |pending: &[(StageKind, u64, u64)]| {
            let traced_key = trace_start.map(|start| {
                let key = img.key();
                telem::register(key, start);
                for &(kind, s, d) in pending {
                    telem::emit(key, kind, s, d);
                }
                key
            });
            let submit_start = traced_key.map(|_| telem::now_ns());
            let ticket = self.service.submit_with_key(&img);
            if let (Some(key), Some(s)) = (traced_key, submit_start) {
                telem::emit(key, StageKind::Submit, s, telem::now_ns().saturating_sub(s));
            }
            Slot::Pending(ticket, traced_key)
        };
        match hint {
            AdmissionHint::Cached(Verdict::Classified(p)) => early(Slot::Hit(p.is_ad)),
            // The memo never caches sheds; keep the match exhaustive.
            AdmissionHint::Cached(Verdict::Shed) | AdmissionHint::WouldShed => {
                self.stats.skipped_shed.fetch_add(1, Ordering::Relaxed);
                early(Slot::Done(InterceptAction::Keep))
            }
            AdmissionHint::WouldBlock { est_wait } => match self.max_wait {
                // Over budget: fail open rather than park a render thread.
                Some(budget) if est_wait > budget => {
                    self.stats.skipped_blocked.fetch_add(1, Ordering::Relaxed);
                    early(Slot::Done(InterceptAction::Keep))
                }
                _ => submit(pending),
            },
            AdmissionHint::Admit => submit(pending),
        }
    }

    /// Turns an admitted slot into its final action (blocking on pending
    /// tickets). A sampled submission that resolved without a publish (a
    /// cache race at submit time) closes its own trace here; `complete` is
    /// single-shot, so the shard's publish path and this path never both
    /// emit `EndToEnd`.
    fn resolve_slot(&self, slot: Slot, bitmap: &mut Bitmap) -> InterceptAction {
        match slot {
            Slot::Done(action) => action,
            Slot::Hit(is_ad) => self.verdict_to_action(is_ad, bitmap),
            Slot::Pending(ticket, traced_key) => {
                let verdict = ticket.wait();
                if let Some(key) = traced_key {
                    if let Some(s) = telem::complete(key) {
                        let end = telem::now_ns();
                        telem::emit(key, StageKind::EndToEnd, s, end.saturating_sub(s));
                    }
                }
                self.serve_verdict(verdict, bitmap)
            }
        }
    }
}

/// One image's fate after the admission decision tree. `Pending` carries
/// the registered trace key when the request is sampled.
enum Slot {
    Done(InterceptAction),
    Hit(bool),
    Pending(crate::service::ServeTicket, Option<u64>),
}

impl ImageInterceptor for ServiceHook {
    fn inspect(&self, bitmap: &mut Bitmap, meta: &ImageMeta<'_>) -> InterceptAction {
        let trace_start = (telem::enabled() && telem::sample_request()).then(telem::now_ns);
        let mut pending = Vec::new();
        if let Some(action) = self.cascade_action(bitmap, meta, trace_start, &mut pending) {
            if let Some(start) = trace_start {
                emit_early_trace(start, &pending);
            }
            return action;
        }
        let slot = self.admit_slot(bitmap, trace_start, &mut pending);
        self.resolve_slot(slot, bitmap)
    }

    fn inspect_batch(&self, batch: &mut [(&mut Bitmap, &ImageMeta<'_>)]) -> Vec<InterceptAction> {
        // Cascade first, then run the CNN residual through the decision
        // tree, submitting the admitted ones so the shards can coalesce the
        // whole set into micro-batches; then collect verdicts in order.
        let slots: Vec<Result<InterceptAction, Slot>> = batch
            .iter_mut()
            .map(|(bitmap, meta)| {
                let trace_start = (telem::enabled() && telem::sample_request()).then(telem::now_ns);
                let mut pending = Vec::new();
                match self.cascade_action(bitmap, meta, trace_start, &mut pending) {
                    Some(action) => {
                        if let Some(start) = trace_start {
                            emit_early_trace(start, &pending);
                        }
                        Ok(action)
                    }
                    None => Err(self.admit_slot(bitmap, trace_start, &mut pending)),
                }
            })
            .collect();
        batch
            .iter_mut()
            .zip(slots)
            .map(|((bitmap, _), slot)| match slot {
                Ok(action) => action,
                Err(slot) => self.resolve_slot(slot, bitmap),
            })
            .collect()
    }

    fn prefers_batch_prefetch(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{OverloadPolicy, ServiceConfig};
    use percival_core::arch::percival_net_slim;
    use percival_core::Classifier;
    use percival_nn::init::kaiming_init;
    use percival_util::Pcg32;
    use std::time::Duration;

    fn classifier() -> Classifier {
        let mut model = percival_net_slim(4);
        kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
        Classifier::new(model, 32)
    }

    fn noisy_bitmap(seed: u64) -> Bitmap {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut b = Bitmap::new(16, 16, [0, 0, 0, 255]);
        for y in 0..16 {
            for x in 0..16 {
                b.set(
                    x,
                    y,
                    [rng.next_below(256) as u8, rng.next_below(256) as u8, 0, 255],
                );
            }
        }
        b
    }

    fn meta(url: &str) -> ImageMeta<'_> {
        ImageMeta::basic(url, 16, 16, 0)
    }

    #[test]
    fn repeat_creatives_resolve_from_the_hint_without_resubmission() {
        let hook = ServiceHook::new(ClassificationService::new(
            classifier(),
            ServiceConfig {
                shards: 2,
                deadline: Duration::from_secs(600),
                ..Default::default()
            },
        ));
        let bmp = noisy_bitmap(5);
        hook.inspect(&mut bmp.clone(), &meta("http://a/x"));
        hook.inspect(&mut bmp.clone(), &meta("http://b/y"));
        let report = hook.service().report();
        assert_eq!(
            report.submitted(),
            1,
            "the second sighting must resolve from the admission hint"
        );
        assert_eq!(hook.stats().classified(), 2);
    }

    #[test]
    fn predicted_sheds_are_skipped_before_submission_and_fail_open() {
        // Zero deadline + a warmed EWMA makes every fresh creative
        // infeasible under Shed, so the hint must divert it pre-submission.
        let hook = ServiceHook::new(ClassificationService::new(
            classifier(),
            ServiceConfig {
                shards: 1,
                overload: OverloadPolicy::Shed,
                deadline: Duration::ZERO,
                queue_capacity: 4,
                ..Default::default()
            },
        ));
        // Warm the per-image EWMA with one long-deadline submission so the
        // feasibility estimate is non-zero.
        let warm = noisy_bitmap(900);
        let v = hook
            .service()
            .submit_with_deadline(&warm, Duration::from_secs(600))
            .wait();
        assert!(v.classified().is_some());

        let mut actions = Vec::new();
        for i in 0..6 {
            let mut bmp = noisy_bitmap(1000 + i);
            actions.push(hook.inspect(&mut bmp, &meta("http://x/ad")));
        }
        assert!(
            actions.iter().all(|a| *a == InterceptAction::Keep),
            "shed paths fail open"
        );
        assert!(
            hook.stats().skipped_shed() >= 1,
            "infeasible creatives must be diverted by the hint"
        );
        let report = hook.service().report();
        assert_eq!(
            report.submitted(),
            1 + (6 - hook.stats().skipped_shed()),
            "skipped creatives never reach the service"
        );
    }

    #[test]
    fn batch_inspection_mixes_hints_and_submissions() {
        let hook = ServiceHook::new(ClassificationService::new(
            classifier(),
            ServiceConfig {
                shards: 2,
                deadline: Duration::from_secs(600),
                ..Default::default()
            },
        ));
        // Seed the cache with one creative.
        let hot = noisy_bitmap(7);
        hook.inspect(&mut hot.clone(), &meta("http://seed"));

        let mut bitmaps: Vec<Bitmap> = (0..4).map(|i| noisy_bitmap(2000 + i)).collect();
        bitmaps.push(hot.clone());
        let metas: Vec<ImageMeta<'_>> = bitmaps.iter().map(|_| meta("http://x/batch")).collect();
        let mut pairs: Vec<(&mut Bitmap, &ImageMeta<'_>)> =
            bitmaps.iter_mut().zip(metas.iter()).collect();
        let actions = hook.inspect_batch(&mut pairs);
        assert_eq!(actions.len(), 5);
        let report = hook.service().report();
        // 1 seed + 4 fresh submissions; the repeated hot creative resolved
        // from the hint.
        assert_eq!(report.submitted(), 5);
        assert_eq!(hook.stats().classified(), 6);
    }
}
