//! The PERCIVAL serving layer: a sharded, deadline-aware classification
//! service.
//!
//! PERCIVAL's classifier is fast enough to sit in the rendering critical
//! path of one page load; at fleet scale the bottleneck moves to *serving*
//! — fan-in from many rendering processes, batching, tail latency and
//! overload behavior. This crate layers that production shape over
//! [`percival_core`]'s batched inference machinery:
//!
//! ```text
//!     renderer hooks ──admission_hint──► Cached / WouldShed / Admit
//!                      │                 (feedback before submission)
//!            submissions (any thread)
//!                      │
//!              ┌───────▼────────┐
//!              │  shard router  │  content-hash → shard, so memoization
//!              └───┬───┬───┬────┘  and single-flight stay shard-local
//!                  │   │   │
//!        ┌─────────▼┐ ┌▼────────┐ ... K shards, each a FlightTable<Edf>
//!        │ shard 0  │ │ shard 1 │     (percival_core::flight): EDF queue
//!        └────┬─────┘ └───┬─────┘     + memo + single-flight + publish
//!             │   steal   │        an idle batcher drains a loaded
//!        ┌────▼───┐ ┌─────▼──┐     neighbor's queue
//!        │batcher0│⇄│batcher1│ ...
//!        └────┬───┘ └───┬────┘
//!             └────┬────┘
//!                  ▼
//!        micro-batched CNN forward passes (f32 or int8 tier)
//! ```
//!
//! The delicate queue → memo → single-flight → publish protocol is *not*
//! implemented here: every shard instantiates the shared flight-control
//! core (`percival_core::flight::FlightTable`) with the EDF discipline,
//! the same audited mechanism the in-browser `InferenceEngine` runs with
//! FIFO. This crate layers serving policy on top:
//!
//! - [`service`]: the [`ClassificationService`] — shard router, per-shard
//!   earliest-deadline-first queues, work-stealing batcher threads, the
//!   `Shed | Degrade | Block` overload policies, and the
//!   [`ClassificationService::admission_hint`] probe that feeds admission
//!   decisions back to the renderer before submission.
//! - [`hook`]: a rendering-pipeline [`ServiceHook`] interceptor that uses
//!   the hint to skip would-shed creatives (fail open) and resolve cached
//!   verdicts without submitting.
//! - [`telemetry`]: plain-data per-shard reports over the flight tables'
//!   wait-free counter blocks, snapshottable as a [`ServiceReport`].
//! - [`loadgen`]: a deterministic synthetic-traffic generator (Zipfian
//!   creative popularity, open-loop RPS ramps, bursts) used by the `serve`
//!   bench, the `serve-smoke` CI job and the serving experiments.
//!
//! Knobs: `ServiceConfig` fields, plus the `PERCIVAL_SHARDS` environment
//! variable (shard count when `ServiceConfig::shards` is 0) and the
//! engine-layer `PERCIVAL_THREADS` / `PERCIVAL_GEMM` documented in the
//! README.

pub mod hook;
pub mod loadgen;
pub mod service;
mod shard;
pub mod telemetry;

pub use hook::{ServiceHook, ServiceHookStats};
pub use loadgen::{
    run_cascade, synthesize_creative_meta, CascadeLoadReport, CreativeMeta, LoadReport,
    TrafficConfig, TrafficPattern,
};
pub use percival_core::flight::AdmissionHint;
pub use service::{ClassificationService, OverloadPolicy, ServeTicket, ServiceConfig, Verdict};
pub use telemetry::{ServiceReport, ShardReport};
