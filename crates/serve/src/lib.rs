//! The PERCIVAL serving layer: a sharded, deadline-aware classification
//! service.
//!
//! PERCIVAL's classifier is fast enough to sit in the rendering critical
//! path of one page load; at fleet scale the bottleneck moves to *serving*
//! — fan-in from many rendering processes, batching, tail latency and
//! overload behavior. This crate layers that production shape over
//! [`percival_core`]'s batched inference machinery:
//!
//! ```text
//!            submissions (any thread)
//!                      │
//!              ┌───────▼────────┐
//!              │  shard router  │  content-hash → shard, so memoization
//!              └───┬───┬───┬────┘  and single-flight stay shard-local
//!                  │   │   │
//!        ┌─────────▼┐ ┌▼────────┐ ... K shards
//!        │ shard 0  │ │ shard 1 │     EDF queue + memo + single-flight
//!        └────┬─────┘ └───┬─────┘
//!             │   steal   │        an idle batcher drains a loaded
//!        ┌────▼───┐ ┌─────▼──┐     neighbor's queue
//!        │batcher0│⇄│batcher1│ ...
//!        └────┬───┘ └───┬────┘
//!             └────┬────┘
//!                  ▼
//!        micro-batched CNN forward passes (f32 or int8 tier)
//! ```
//!
//! - [`service`]: the [`ClassificationService`] — shard router, per-shard
//!   earliest-deadline-first queues, work-stealing batcher threads, and the
//!   `Shed | Degrade | Block` overload policies.
//! - [`telemetry`]: wait-free counters and latency histograms per shard,
//!   snapshottable as a [`ServiceReport`].
//! - [`loadgen`]: a deterministic synthetic-traffic generator (Zipfian
//!   creative popularity, open-loop RPS ramps, bursts) used by the `serve`
//!   bench, the `serve-smoke` CI job and the serving experiments.
//!
//! Knobs: `ServiceConfig` fields, plus the `PERCIVAL_SHARDS` environment
//! variable (shard count when `ServiceConfig::shards` is 0) and the
//! engine-layer `PERCIVAL_THREADS` / `PERCIVAL_GEMM` documented in the
//! README.

pub mod loadgen;
pub mod service;
mod shard;
pub mod telemetry;

pub use loadgen::{LoadReport, TrafficConfig, TrafficPattern};
pub use service::{ClassificationService, OverloadPolicy, ServeTicket, ServiceConfig, Verdict};
pub use telemetry::{ServiceReport, ShardReport};
