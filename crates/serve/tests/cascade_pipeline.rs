//! The `cascade-smoke` gate: end-to-end contracts of the cascade
//! front-end over the mixed-traffic load generator.
//!
//! Pins the properties the PR claims: (1) cascade runs are deterministic —
//! same seed, same per-request decisions; (2) every request is attributed
//! to exactly one tier, and the counters that surface in the
//! [`ServiceReport`] agree with a local tally; (3) requests resolved at
//! tier 0/1 never reach a flight queue (the service's `submitted` counter
//! stays at zero on an all-early workload); (4) on the mixed workload a
//! supermajority of requests resolve without the CNN.

use percival_core::arch::percival_net_slim;
use percival_core::cascade::{Cascade, CascadeConfig, CascadeDecision, Tier};
use percival_core::Classifier;
use percival_nn::init::kaiming_init;
use percival_serve::loadgen::{self, TrafficConfig, TrafficPattern};
use percival_serve::{ClassificationService, OverloadPolicy, ServiceConfig};
use percival_util::Pcg32;
use std::sync::Arc;
use std::time::Duration;

fn classifier() -> Classifier {
    let mut model = percival_net_slim(4);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
    Classifier::new(model, 32)
}

fn service() -> ClassificationService {
    ClassificationService::new(
        classifier(),
        ServiceConfig {
            shards: 2,
            deadline: Duration::from_secs(600),
            overload: OverloadPolicy::Block,
            ..Default::default()
        },
    )
}

fn traffic() -> TrafficConfig {
    TrafficConfig {
        seed: 42,
        creatives: 40,
        ad_fraction: 0.5,
        zipf_s: 0.9,
        requests: 400,
        pattern: TrafficPattern::ClosedLoop,
        edge: 32,
    }
}

#[test]
fn cascade_runs_are_deterministic() {
    let run = || {
        let svc = service();
        let cascade = Arc::new(Cascade::synthetic_with(CascadeConfig::default()));
        loadgen::run_cascade(&svc, &cascade, &traffic())
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.decisions, b.decisions,
        "same seed must produce identical per-request decisions"
    );
    assert_eq!(a.tier0_blocked, b.tier0_blocked);
    assert_eq!(a.tier0_exempted, b.tier0_exempted);
    assert_eq!(a.tier1_blocked, b.tier1_blocked);
    assert_eq!(a.tier1_kept, b.tier1_kept);
    assert_eq!(a.cnn_submitted, b.cnn_submitted);
    assert_eq!(a.classified, b.classified, "residual verdict counts agree");
}

#[test]
fn every_request_is_attributed_to_exactly_one_tier() {
    let svc = service();
    let cascade = Arc::new(Cascade::synthetic_with(CascadeConfig::default()));
    let report = loadgen::run_cascade(&svc, &cascade, &traffic());

    assert_eq!(report.lost, 0, "no ticket may be dropped");
    assert_eq!(
        report.resolved_early() + report.cnn_submitted,
        report.requests,
        "tier attribution partitions the request stream"
    );

    // The counters surfacing through the service report must agree with
    // the run's local tally — they are the same events, counted twice.
    let snap = report
        .service
        .cascade
        .as_ref()
        .expect("run_cascade attaches the cascade to the service");
    assert_eq!(snap.requests, report.requests as u64);
    assert_eq!(snap.tier0_blocked, report.tier0_blocked as u64);
    assert_eq!(snap.tier0_exempted, report.tier0_exempted as u64);
    assert_eq!(snap.tier1_blocked, report.tier1_blocked as u64);
    assert_eq!(snap.tier1_kept, report.tier1_kept as u64);
    assert_eq!(snap.cnn_residual, report.cnn_submitted as u64);
    assert_eq!(
        snap.resolved_early() + snap.cnn_residual,
        snap.requests,
        "snapshot invariant: resolution counters sum to requests"
    );

    // Attribution matches the decision log exactly.
    let count = |pred: &dyn Fn(&CascadeDecision) -> bool| {
        report.decisions.iter().filter(|d| pred(d)).count()
    };
    assert_eq!(
        count(&|d| *d == CascadeDecision::Block(Tier::NetworkFilter)),
        report.tier0_blocked
    );
    assert_eq!(
        count(&|d| *d == CascadeDecision::Keep(Tier::NetworkFilter)),
        report.tier0_exempted
    );
    assert_eq!(
        count(&|d| *d == CascadeDecision::Block(Tier::Structural)),
        report.tier1_blocked
    );
    assert_eq!(
        count(&|d| *d == CascadeDecision::Keep(Tier::Structural)),
        report.tier1_kept
    );
    assert_eq!(
        count(&|d| *d == CascadeDecision::Classify),
        report.cnn_submitted
    );
}

#[test]
fn early_resolved_requests_never_reach_a_flight_queue() {
    // ad_fraction 1.0: every creative class resolves at tier 0 or tier 1,
    // so the CNN service must see zero submissions.
    let svc = service();
    let cascade = Arc::new(Cascade::synthetic_with(CascadeConfig::default()));
    let cfg = TrafficConfig {
        ad_fraction: 1.0,
        ..traffic()
    };
    let report = loadgen::run_cascade(&svc, &cascade, &cfg);
    assert_eq!(report.cnn_submitted, 0);
    assert_eq!(report.requests, 400);
    assert_eq!(
        report.service.submitted(),
        0,
        "tier-0/1-decided creatives must never touch a flight queue"
    );
    assert_eq!(report.early_fraction(), 1.0);
}

#[test]
fn mixed_workload_resolves_a_supermajority_early() {
    // The ISSUE's acceptance bar: >= 60% of mixed-loadgen requests resolve
    // at tier 0/1, pinned by the attribution counters.
    let svc = service();
    let cascade = Arc::new(Cascade::synthetic_with(CascadeConfig::default()));
    let report = loadgen::run_cascade(&svc, &cascade, &traffic());
    assert!(
        report.early_fraction() >= 0.6,
        "early fraction {:.3} must be >= 0.60\n{report}",
        report.early_fraction()
    );
    // The residual really is classified (the cascade does not starve the
    // CNN: the ambiguous class exists and flows through).
    assert!(report.cnn_submitted > 0, "mixed traffic has a CNN residual");
    assert_eq!(report.classified, report.cnn_submitted);
}

#[test]
fn disabled_cascade_sends_everything_to_the_cnn() {
    // `PERCIVAL_CASCADE=off` semantics via explicit config: both tiers
    // disabled, every request becomes CNN residual — the baseline the
    // speedup rows compare against.
    let svc = service();
    let off = CascadeConfig {
        network_filter: false,
        structural: false,
        ..CascadeConfig::default()
    };
    let cascade = Arc::new(Cascade::synthetic_with(off));
    let report = loadgen::run_cascade(&svc, &cascade, &traffic());
    assert_eq!(report.resolved_early(), 0);
    assert_eq!(report.cnn_submitted, report.requests);
    assert!(report
        .decisions
        .iter()
        .all(|d| *d == CascadeDecision::Classify));
}

#[test]
fn tier_attribution_shifts_with_the_tier_mix() {
    // t0-only: structural decisions disappear, their traffic flows to the
    // CNN; tier-0 attribution is unchanged (tiers are independent).
    let full = {
        let svc = service();
        let cascade = Arc::new(Cascade::synthetic_with(CascadeConfig::default()));
        loadgen::run_cascade(&svc, &cascade, &traffic())
    };
    let t0_only = {
        let svc = service();
        let cfg = CascadeConfig {
            structural: false,
            ..CascadeConfig::default()
        };
        let cascade = Arc::new(Cascade::synthetic_with(cfg));
        loadgen::run_cascade(&svc, &cascade, &traffic())
    };
    assert_eq!(t0_only.tier0_blocked, full.tier0_blocked);
    assert_eq!(t0_only.tier0_exempted, full.tier0_exempted);
    assert_eq!(t0_only.tier1_blocked, 0);
    assert_eq!(t0_only.tier1_kept, 0);
    assert_eq!(
        t0_only.cnn_submitted,
        full.cnn_submitted + full.tier1_blocked + full.tier1_kept,
        "tier-1 traffic falls through to the CNN when tier 1 is off"
    );
}
