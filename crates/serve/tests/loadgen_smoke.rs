//! The `serve-smoke` gate: small, fixed-seed load-generator runs that must
//! hold on any host. Asserts the determinism contract (same seed → same
//! workload → same verdict counts when nothing is shed) and the overload
//! contract (zero lost tickets always; shed decisions bounded, and the
//! tail latency of admitted work bounded by the deadline) without relying
//! on host speed: the overload run is sized from a runtime capacity
//! calibration, not absolute rates.

use percival_core::arch::percival_net_slim;
use percival_core::Classifier;
use percival_nn::init::kaiming_init;
use percival_serve::loadgen::{self, calibrate_capacity_rps, TrafficConfig, TrafficPattern};
use percival_serve::{ClassificationService, OverloadPolicy, ServiceConfig};
use percival_util::Pcg32;
use std::time::Duration;

fn classifier() -> Classifier {
    let mut model = percival_net_slim(4);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
    Classifier::new(model, 32)
}

fn traffic() -> TrafficConfig {
    TrafficConfig {
        seed: 42,
        creatives: 24,
        ad_fraction: 0.5,
        zipf_s: 0.9,
        requests: 200,
        pattern: TrafficPattern::ClosedLoop,
        edge: 32,
    }
}

#[test]
fn closed_loop_run_is_deterministic_and_loses_nothing() {
    // Closed loop + no deadline pressure: the verdict counts are a pure
    // function of the seed, so two fresh services must agree exactly.
    let cfg = ServiceConfig {
        shards: 2,
        deadline: Duration::from_secs(600),
        overload: OverloadPolicy::Block,
        ..Default::default()
    };
    let run = |_: u32| {
        let svc = ClassificationService::new(classifier(), cfg);
        loadgen::run(&svc, &traffic())
    };
    let a = run(0);
    let b = run(1);
    for r in [&a, &b] {
        assert_eq!(r.lost, 0, "no ticket may be dropped");
        assert_eq!(r.shed, 0, "Block policy sheds nothing");
        assert_eq!(r.classified, r.submitted);
        assert_eq!(r.submitted, 200);
    }
    assert_eq!(
        a.classified, b.classified,
        "verdict counts are seed-determined"
    );
    assert_eq!(a.ads, b.ads, "ad verdicts are seed-determined");
    // Zipf repeats over 24 creatives: most requests come from the caches.
    assert!(
        a.service.dedup_rate() > 0.5,
        "hot-key traffic must hit the memo/single-flight paths: {:.2}",
        a.service.dedup_rate()
    );
}

#[test]
fn overload_sheds_within_bounds_and_admits_within_deadline() {
    // Open-loop at ~4x calibrated capacity with a deadline the host can
    // meet for admitted work: shedding is mandatory but bounded, nothing
    // is lost, and the p99 of *admitted* requests respects the deadline.
    let calib_svc = ClassificationService::new(
        classifier(),
        ServiceConfig {
            shards: 1,
            deadline: Duration::from_secs(600),
            overload: OverloadPolicy::Block,
            ..Default::default()
        },
    );
    let base = traffic();
    let capacity = calibrate_capacity_rps(&calib_svc, &base).max(20.0);
    drop(calib_svc);

    // Deadline: time to serve two max batches at calibrated speed, floored
    // generously so scheduler jitter on loaded CI hosts doesn't flake.
    let deadline = Duration::from_secs_f64((16.0 / capacity).max(0.05));
    let svc = ClassificationService::new(
        classifier(),
        ServiceConfig {
            shards: 1,
            deadline,
            overload: OverloadPolicy::Shed,
            queue_capacity: 64,
            ..Default::default()
        },
    );
    let report = loadgen::run(
        &svc,
        &TrafficConfig {
            pattern: TrafficPattern::Steady(capacity * 4.0),
            requests: 300,
            // Distinct creatives: repeats would dedup away the overload.
            creatives: 300,
            zipf_s: -1.0,
            ..base
        },
    );
    println!("capacity {capacity:.0} rps, deadline {deadline:?}\n{report}");
    assert_eq!(report.lost, 0, "no ticket may be dropped under overload");
    assert_eq!(report.classified + report.shed, report.submitted);
    let shed_rate = report.shed as f64 / report.submitted as f64;
    assert!(
        shed_rate > 0.2,
        "4x overload must shed a substantial fraction: {shed_rate:.2}"
    );
    assert!(
        shed_rate < 0.95,
        "the service must still admit real work: {shed_rate:.2}"
    );
    // The whole point of deadline-aware shedding: admitted work is served
    // in time. Allow 2x for the log-bucket histogram's resolution plus
    // scheduler noise on shared CI hosts.
    assert!(
        report.latency.p99 <= deadline * 2,
        "p99 {:?} must stay within ~deadline {:?}",
        report.latency.p99,
        deadline
    );
}

#[test]
fn degrade_policy_serves_everything_with_a_cheaper_tier() {
    let svc = ClassificationService::new(
        classifier(),
        ServiceConfig {
            shards: 1,
            deadline: Duration::from_millis(1),
            overload: OverloadPolicy::Degrade,
            queue_capacity: 8,
            ..Default::default()
        },
    );
    let report = loadgen::run(
        &svc,
        &TrafficConfig {
            requests: 100,
            creatives: 100,
            zipf_s: -1.0,
            ..traffic()
        },
    );
    assert_eq!(report.lost, 0);
    assert_eq!(report.shed, 0, "Degrade never rejects");
    assert_eq!(report.classified, 100);
    assert!(
        report.service.degraded() > 0,
        "a 1ms deadline must demote work to the int8 tier"
    );
}
