//! One protocol, two instantiations: the shared stress harness for the
//! flight-control core (`percival_core::flight`).
//!
//! The queue → memo → single-flight → publish protocol lives once, in
//! `FlightTable`; the inference engine instantiates it with the FIFO
//! discipline and every serve shard with EDF. This harness hammers the
//! *same* invariants through both public surfaces from one test body, so a
//! publish-ordering bug (e.g. removing a single-flight group before the
//! memo knows the verdict) fails in both layers instead of surviving in
//! whichever copy a hand-mirrored fix missed:
//!
//! - hot-key hammering: N threads × K hot creatives → exactly one CNN pass
//!   per distinct creative, everything else deduplicated;
//! - flush draining: fire-and-forget submissions all resolve;
//! - shutdown draining: dropping the layer mid-load resolves every ticket.
//!
//! The EDF-only behavior (tighter coalesced deadlines re-prioritizing
//! their group) is asserted here too, with deterministic traffic.

use percival_core::arch::percival_net_slim;
use percival_core::{Classifier, EngineConfig, InferenceEngine, VerdictTicket};
use percival_imgcodec::Bitmap;
use percival_nn::init::kaiming_init;
use percival_serve::{ClassificationService, OverloadPolicy, ServeTicket, ServiceConfig, Verdict};
use percival_util::Pcg32;
use std::time::Duration;

/// Effectively infinite deadline: the harness exercises protocol edges,
/// not shedding, and debug-build CNN passes are slow.
const LONG: Duration = Duration::from_secs(600);

fn classifier() -> Classifier {
    let mut model = percival_net_slim(4);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
    Classifier::new(model, 32)
}

fn noisy_bitmap(seed: u64) -> Bitmap {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut b = Bitmap::new(16, 16, [0, 0, 0, 255]);
    for y in 0..16 {
        for x in 0..16 {
            b.set(
                x,
                y,
                [rng.next_below(256) as u8, rng.next_below(256) as u8, 0, 255],
            );
        }
    }
    b
}

/// Protocol counters normalized across the two layers.
struct ProtocolStats {
    submitted: u64,
    /// memo hits + single-flight merges.
    dedup: u64,
    /// Images that actually went through a CNN pass.
    batched_images: u64,
}

/// One instantiation of the shared flight-control protocol under test.
trait FlightDriver: Sync + Sized {
    type Ticket: Send;
    fn spawn() -> Self;
    fn submit(&self, bitmap: &Bitmap) -> Self::Ticket;
    /// Blocks for the verdict's p_ad (panics on shed — the harness never
    /// configures shedding).
    fn wait(ticket: Self::Ticket) -> f32;
    fn poll(ticket: &Self::Ticket) -> Option<f32>;
    fn flush(&self);
    fn stats(&self) -> ProtocolStats;
}

/// The in-browser engine: `FlightTable<Fifo, Prediction>`.
struct FifoEngine(InferenceEngine);

impl FlightDriver for FifoEngine {
    type Ticket = VerdictTicket;

    fn spawn() -> Self {
        FifoEngine(InferenceEngine::new(
            classifier(),
            EngineConfig {
                max_batch: 4,
                ..Default::default()
            },
        ))
    }

    fn submit(&self, bitmap: &Bitmap) -> VerdictTicket {
        self.0.submit(bitmap)
    }

    fn wait(ticket: VerdictTicket) -> f32 {
        ticket.wait().p_ad
    }

    fn poll(ticket: &VerdictTicket) -> Option<f32> {
        ticket.poll().map(|p| p.p_ad)
    }

    fn flush(&self) {
        self.0.flush();
    }

    fn stats(&self) -> ProtocolStats {
        let s = self.0.stats().snapshot();
        ProtocolStats {
            submitted: s.submitted,
            dedup: s.memo_hits + s.coalesced,
            batched_images: s.batched_images,
        }
    }
}

/// The serving layer: per-shard `FlightTable<Edf, Verdict>` behind the
/// content-hash router, with work-stealing batchers.
struct EdfService(ClassificationService);

impl FlightDriver for EdfService {
    type Ticket = ServeTicket;

    fn spawn() -> Self {
        EdfService(ClassificationService::new(
            classifier(),
            ServiceConfig {
                shards: 2,
                max_batch: 4,
                deadline: LONG,
                ..Default::default()
            },
        ))
    }

    fn submit(&self, bitmap: &Bitmap) -> ServeTicket {
        self.0.submit(bitmap)
    }

    fn wait(ticket: ServeTicket) -> f32 {
        match ticket.wait() {
            Verdict::Classified(p) => p.p_ad,
            Verdict::Shed => panic!("protocol harness never configures shedding"),
        }
    }

    fn poll(ticket: &ServeTicket) -> Option<f32> {
        ticket.poll().map(|v| match v {
            Verdict::Classified(p) => p.p_ad,
            Verdict::Shed => panic!("protocol harness never configures shedding"),
        })
    }

    fn flush(&self) {
        self.0.flush();
    }

    fn stats(&self) -> ProtocolStats {
        let report = self.0.report();
        ProtocolStats {
            submitted: report.submitted(),
            dedup: report.memo_hits() + report.coalesced(),
            batched_images: report.batched_images(),
        }
    }
}

/// Invariant core: `threads` workers hammer `keys` hot creatives for
/// `iters` rounds each. Every submission of a key must observe the same
/// verdict, each distinct creative must cost exactly one CNN pass (a
/// publish-ordering bug classifies it twice), and the dedup accounting
/// must add up.
fn hammer_hot_keys<D: FlightDriver>(threads: usize, iters: usize, keys: usize) {
    let driver = D::spawn();
    let bitmaps: Vec<Bitmap> = (0..keys).map(|i| noisy_bitmap(40 + i as u64)).collect();
    let per_thread: Vec<Vec<(usize, f32)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let driver = &driver;
                let bitmaps = &bitmaps;
                scope.spawn(move || {
                    (0..iters)
                        .map(|i| {
                            let k = (t + i) % keys;
                            (k, D::wait(driver.submit(&bitmaps[k])))
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("hammer thread"))
            .collect()
    });

    let mut first: Vec<Option<f32>> = vec![None; keys];
    for (k, p_ad) in per_thread.into_iter().flatten() {
        assert!((0.0..=1.0).contains(&p_ad));
        match first[k] {
            None => first[k] = Some(p_ad),
            Some(expect) => assert_eq!(p_ad, expect, "key {k}: one verdict for all"),
        }
    }

    let total = (threads * iters) as u64;
    let stats = driver.stats();
    assert_eq!(stats.submitted, total);
    assert_eq!(
        stats.batched_images, keys as u64,
        "exactly one CNN pass per distinct creative"
    );
    assert_eq!(
        stats.dedup,
        total - keys as u64,
        "every non-first submission deduplicates"
    );
}

/// Fire-and-forget submissions followed by flush: every ticket resolves,
/// including those still queued when flush begins.
fn flush_drains_everything<D: FlightDriver>(distinct: usize) {
    let driver = D::spawn();
    let bitmaps: Vec<Bitmap> = (0..distinct)
        .map(|i| noisy_bitmap(300 + i as u64))
        .collect();
    let tickets: Vec<D::Ticket> = bitmaps.iter().map(|b| driver.submit(b)).collect();
    driver.flush();
    for (i, t) in tickets.iter().enumerate() {
        assert!(D::poll(t).is_some(), "ticket {i} unresolved after flush");
    }
    assert_eq!(driver.stats().batched_images, distinct as u64);
}

/// Dropping the layer while its queues are loaded: the batchers drain
/// before exiting, so no ticket is dropped by shutdown.
fn shutdown_drains_everything<D: FlightDriver>(distinct: usize) {
    let tickets: Vec<D::Ticket> = {
        let driver = D::spawn();
        (0..distinct)
            .map(|i| driver.submit(&noisy_bitmap(500 + i as u64)))
            .collect()
        // driver dropped here with work likely still queued
    };
    for (i, t) in tickets.into_iter().enumerate() {
        // `wait` panics on a dropped request; reaching a verdict at all is
        // the assertion.
        let p_ad = D::wait(t);
        assert!((0.0..=1.0).contains(&p_ad), "ticket {i}");
    }
}

#[test]
fn fifo_engine_hot_keys_share_one_cnn_pass() {
    hammer_hot_keys::<FifoEngine>(8, 8, 4);
}

#[test]
fn edf_service_hot_keys_share_one_cnn_pass() {
    hammer_hot_keys::<EdfService>(8, 8, 4);
}

#[test]
fn fifo_engine_flush_drains_everything() {
    flush_drains_everything::<FifoEngine>(24);
}

#[test]
fn edf_service_flush_drains_everything() {
    flush_drains_everything::<EdfService>(24);
}

#[test]
fn fifo_engine_shutdown_drains_everything() {
    shutdown_drains_everything::<FifoEngine>(16);
}

#[test]
fn edf_service_shutdown_drains_everything() {
    shutdown_drains_everything::<EdfService>(16);
}

/// EDF-only (ROADMAP open item, resolved by the shared core): a second
/// submitter of an in-flight creative carrying a *tighter* deadline moves
/// the whole coalesced group forward in the EDF order, instead of the
/// group inheriting the first submitter's relaxed deadline forever.
/// Deterministic single-shard traffic: the hot creative is submitted with
/// the loosest deadline in the queue, so without re-prioritization it
/// resolves last.
#[test]
fn tighter_deadline_resubmission_moves_its_group_forward() {
    const FILLERS: usize = 32;
    // The scenario needs the hot group to still be *queued* when the
    // tighter resubmission arrives; on a fast release build the batcher
    // can occasionally drain the whole queue first (a benign race in the
    // test setup, not in the protocol). Retry with a fresh service until
    // the resubmission actually coalesced — a re-prioritization regression
    // fails every attempt deterministically.
    for attempt in 0..5 {
        let svc = ClassificationService::new(
            classifier(),
            ServiceConfig {
                shards: 1,
                max_batch: 1,
                overload: OverloadPolicy::Block,
                deadline: LONG,
                queue_capacity: 1024,
                ..Default::default()
            },
        );
        // Fillers first: they keep the single batcher busy and, with
        // earlier deadlines than the hot group's first submission, always
        // outrank it.
        let fillers: Vec<Bitmap> = (0..FILLERS as u64).map(|i| noisy_bitmap(100 + i)).collect();
        let filler_tickets: Vec<ServeTicket> = fillers
            .iter()
            .map(|b| svc.submit_with_deadline(b, LONG))
            .collect();
        // Relaxed first submission: strictly the loosest deadline in the
        // queue, so the hot group cannot be popped until the fillers drain.
        let hot = noisy_bitmap(7);
        let hot_first = svc.submit_with_deadline(&hot, Duration::from_secs(1200));
        // Second submitter, much tighter deadline: if it coalesces, it must
        // re-prioritize the group ahead of the fillers.
        let hot_second = svc.submit_with_deadline(&hot, Duration::from_millis(1));

        // Observe resolution order by polling.
        let mut filler_slots: Vec<Option<ServeTicket>> =
            filler_tickets.into_iter().map(Some).collect();
        let mut resolved_before_hot = 0usize;
        let mut hot_resolved = false;
        let mut hot_p = None;
        while !hot_resolved || filler_slots.iter().any(Option::is_some) {
            if !hot_resolved {
                if let Some(v) = hot_second.poll() {
                    hot_p = Some(v.classified().expect("Block never sheds").p_ad);
                    hot_resolved = true;
                }
            }
            for slot in &mut filler_slots {
                if let Some(t) = slot {
                    if let Some(v) = t.poll() {
                        assert!(v.classified().is_some(), "Block never sheds");
                        *slot = None;
                        if !hot_resolved {
                            resolved_before_hot += 1;
                        }
                    }
                }
            }
            std::thread::yield_now();
        }

        let report = svc.report();
        // Both submitters of the group share one verdict either way.
        assert_eq!(
            hot_first.wait().classified().expect("classified").p_ad,
            hot_p.expect("hot verdict"),
            "both submitters share the hot creative's verdict"
        );
        assert_eq!(report.batched_images(), FILLERS as u64 + 1);
        if report.reprioritized() == 0 {
            // The hot entry was no longer queued (memo hit or mid-batch
            // coalesce) — the scenario's precondition failed, not the
            // protocol. A broken re-prioritization hits this on every
            // attempt and fails below.
            eprintln!("attempt {attempt}: hot group left the queue before the resubmission");
            continue;
        }
        // The group moved forward in the EDF order, so it cannot have
        // resolved dead last — which is exactly where its original loosest
        // deadline would have left it.
        assert!(
            resolved_before_hot < FILLERS,
            "hot group resolved after every filler despite re-prioritization"
        );
        return;
    }
    panic!(
        "the tighter resubmission never re-prioritized its coalesced group: \
         either re-prioritization regressed, or the queue drained first in \
         all five attempts"
    );
}
