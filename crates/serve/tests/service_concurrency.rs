//! Serving-layer concurrency edges *above* the shared flight-control
//! protocol: content-hash routing stability and shard locality, overload
//! policies and work stealing.
//!
//! The protocol invariants themselves (single-flight dedup under fan-in,
//! flush/shutdown draining without dropped tickets) are asserted by the
//! shared harness in `flight_protocol.rs`, which runs one test body
//! against both the FIFO engine and this EDF service.

use percival_core::arch::percival_net_slim;
use percival_core::Classifier;
use percival_imgcodec::Bitmap;
use percival_nn::init::kaiming_init;
use percival_serve::{ClassificationService, OverloadPolicy, ServeTicket, ServiceConfig, Verdict};
use percival_util::Pcg32;
use std::time::Duration;

/// Effectively infinite deadline: these tests exercise concurrency edges,
/// not shedding, and debug-build CNN passes are slow.
const LONG: Duration = Duration::from_secs(600);

fn classifier() -> Classifier {
    let mut model = percival_net_slim(4);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
    Classifier::new(model, 32)
}

fn service(cfg: ServiceConfig) -> ClassificationService {
    ClassificationService::new(classifier(), cfg)
}

fn noisy_bitmap(seed: u64) -> Bitmap {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut b = Bitmap::new(16, 16, [0, 0, 0, 255]);
    for y in 0..16 {
        for x in 0..16 {
            b.set(
                x,
                y,
                [rng.next_below(256) as u8, rng.next_below(256) as u8, 0, 255],
            );
        }
    }
    b
}

#[test]
fn single_flight_stays_on_the_home_shard() {
    // Content-hash routing sends every copy of a creative to one shard, so
    // its memoization and single-flight state never span shards.
    let svc = service(ServiceConfig {
        shards: 4,
        deadline: LONG,
        ..Default::default()
    });
    let bmp = noisy_bitmap(7);
    std::thread::scope(|scope| {
        for _ in 0..16 {
            scope.spawn(|| {
                assert!(svc.submit_wait(&bmp).classified().is_some());
            });
        }
    });
    let report = svc.report();
    let home = svc.shard_of(&bmp);
    assert_eq!(report.shards[home].submitted, 16);
    for s in &report.shards {
        if s.index != home {
            assert_eq!(s.submitted, 0, "shard {} saw foreign traffic", s.index);
        }
    }
}

#[test]
fn distinct_creatives_spread_across_shards_and_all_resolve() {
    let svc = service(ServiceConfig {
        shards: 4,
        deadline: LONG,
        ..Default::default()
    });
    let bitmaps: Vec<Bitmap> = (0..64).map(|i| noisy_bitmap(100 + i)).collect();
    std::thread::scope(|scope| {
        for bmp in &bitmaps {
            scope.spawn(|| {
                let v = svc.submit_wait(bmp);
                let p = v.classified().expect("no overload here");
                assert!((0.0..=1.0).contains(&p.p_ad));
            });
        }
    });
    let report = svc.report();
    assert_eq!(
        report.batched_images(),
        64,
        "every creative classified once"
    );
    let active = report.shards.iter().filter(|s| s.submitted > 0).count();
    assert!(
        active >= 2,
        "64 distinct creatives must hit >1 shard: {active}"
    );
}

#[test]
fn shed_policy_rejects_past_capacity_with_explicit_verdicts() {
    // A tiny queue plus an impossible deadline forces both shedding
    // points; every submission still gets an explicit verdict.
    let svc = service(ServiceConfig {
        shards: 1,
        max_batch: 4,
        queue_capacity: 2,
        deadline: Duration::ZERO,
        overload: OverloadPolicy::Shed,
        ..Default::default()
    });
    let tickets: Vec<ServeTicket> = (0..50)
        .map(|i| svc.submit(&noisy_bitmap(700 + i)))
        .collect();
    svc.flush();
    let mut shed = 0;
    for t in tickets {
        match t.poll().expect("resolved") {
            Verdict::Shed => shed += 1,
            Verdict::Classified(_) => {}
        }
    }
    let report = svc.report();
    assert_eq!(
        shed as u64,
        report.shed(),
        "ticket verdicts match telemetry"
    );
    assert!(shed > 0, "zero-deadline overload must shed something");
}

#[test]
fn block_policy_loses_nothing_under_pressure() {
    let svc = service(ServiceConfig {
        shards: 1,
        max_batch: 4,
        queue_capacity: 4,
        overload: OverloadPolicy::Block,
        deadline: LONG,
        ..Default::default()
    });
    let bitmaps: Vec<Bitmap> = (0..40).map(|i| noisy_bitmap(900 + i)).collect();
    std::thread::scope(|scope| {
        for bmp in &bitmaps {
            scope.spawn(|| {
                let v = svc.submit_wait(bmp);
                assert!(v.classified().is_some(), "Block never sheds while running");
            });
        }
    });
    let report = svc.report();
    assert_eq!(report.shed(), 0);
    assert_eq!(report.batched_images(), 40);
    assert!(
        report.shards[0].max_queue_depth <= 4 + 1,
        "backpressure bounds the queue: {}",
        report.shards[0].max_queue_depth
    );
}

#[test]
fn work_stealing_drains_a_loaded_neighbor() {
    // One hot shard, K batchers: with stealing on, foreign batchers run
    // some of the hot shard's batches. Detectable via stolen_batches on a
    // multi-queue service even on one core.
    let svc = service(ServiceConfig {
        shards: 4,
        max_batch: 2,
        steal: true,
        deadline: LONG,
        ..Default::default()
    });
    // Load every shard with distinct creatives, then let the fleet drain.
    let bitmaps: Vec<Bitmap> = (0..96).map(|i| noisy_bitmap(1100 + i)).collect();
    let tickets: Vec<ServeTicket> = bitmaps.iter().map(|b| svc.submit(b)).collect();
    svc.flush();
    for t in tickets {
        assert!(t.poll().is_some());
    }
    let report = svc.report();
    assert_eq!(report.batched_images(), 96);
    // Stealing is opportunistic; the hard guarantee is only that nothing
    // was lost and batches ran. Report it for visibility.
    println!("stolen batches: {}", report.stolen_batches());
}

#[test]
fn routing_is_stable_per_creative() {
    let svc = service(ServiceConfig {
        shards: 3,
        ..Default::default()
    });
    for i in 0..20 {
        let bmp = noisy_bitmap(1300 + i);
        let s = svc.shard_of(&bmp);
        assert_eq!(s, svc.shard_of(&bmp), "routing must be deterministic");
        assert!(s < 3);
    }
}
