//! The `telem-smoke` gate: end-to-end contracts of the flight recorder
//! over the load generator.
//!
//! Pins the observability PR's claims: (1) with 1-in-N sampling a loadgen
//! run records spans, and the Chrome trace dump round-trips through the
//! hand-rolled parser losslessly; (2) every sampled request's trace closes
//! with exactly one `EndToEnd` span; (3) the per-stage spans of each trace
//! tile the request — the union of their intervals covers the trace's
//! `EndToEnd` to within 10% (spans may overlap: the submitter's `Submit`
//! span races the batcher's `QueueWait` clock, which starts at the queue
//! push *inside* the submit call); (4) the Prometheus exposition of the
//! same run renders the
//! per-shard counter families and the latency histogram.
//!
//! Everything lives in one `#[test]` because the sampling sequence and the
//! per-thread rings are process-global: a second concurrently-running test
//! would interleave its requests into the 1-in-N cadence.

use percival_core::arch::percival_net_slim;
use percival_core::Classifier;
use percival_nn::init::kaiming_init;
use percival_serve::loadgen::{self, TrafficConfig, TrafficPattern};
use percival_serve::{ClassificationService, ServiceConfig};
use percival_util::telem::{self, StageKind};
use percival_util::Pcg32;
use std::collections::HashMap;
use std::time::Duration;

fn classifier() -> Classifier {
    let mut model = percival_net_slim(4);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
    Classifier::new(model, 32)
}

#[test]
fn sampled_loadgen_run_produces_a_coherent_flight_record() {
    telem::set_sampling(16);
    telem::clear();
    let service = ClassificationService::new(
        classifier(),
        ServiceConfig {
            shards: 2,
            deadline: Duration::from_secs(600),
            ..Default::default()
        },
    );
    // Distinct creatives (round-robin), so every sampled request owns its
    // trace key: no coalescing, no cache hits, a full span chain each.
    let cfg = TrafficConfig {
        seed: 11,
        creatives: 96,
        ad_fraction: 0.5,
        zipf_s: -1.0,
        requests: 96,
        pattern: TrafficPattern::ClosedLoop,
        edge: 32,
    };
    let report = loadgen::run(&service, &cfg);
    telem::set_sampling(0);
    assert_eq!(report.lost, 0, "loadgen must not lose requests");
    assert_eq!(report.classified, 96);

    let spans = telem::drain();
    assert!(
        !spans.is_empty(),
        "sampling 1-in-16 over 96 requests must record spans"
    );

    // The Chrome dump round-trips losslessly through the parser.
    let doc = telem::chrome_trace_json(&spans);
    let parsed = telem::parse_chrome_trace(&doc).expect("trace dump must be valid JSON");
    assert_eq!(parsed, spans, "Chrome trace round-trip must be lossless");

    // 96 requests at 1-in-16 sample requests 0, 16, ..., 80: six traces,
    // each closed by exactly one EndToEnd.
    let mut by_trace: HashMap<u64, Vec<&telem::SpanEvent>> = HashMap::new();
    for s in &spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    assert_eq!(by_trace.len(), 6, "expected six sampled traces");
    for (trace, spans) in &by_trace {
        let e2e: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == StageKind::EndToEnd)
            .collect();
        assert_eq!(
            e2e.len(),
            1,
            "trace {trace:#x} must close with exactly one EndToEnd"
        );

        // The stage spans tile the request: the union of their intervals
        // covers the end-to-end wall time to within 10%. A plain duration
        // sum would double-count legitimate overlap — the batcher can start
        // (or finish) a sampled request's queue wait while the submitting
        // thread is still inside `submit`.
        let total = e2e[0].dur_ns;
        let mut intervals: Vec<(u64, u64)> = spans
            .iter()
            .filter(|s| s.kind != StageKind::EndToEnd)
            .map(|s| (s.start_ns, s.start_ns + s.dur_ns))
            .collect();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut frontier = 0u64;
        for (lo, hi) in intervals {
            covered += hi.saturating_sub(lo.max(frontier));
            frontier = frontier.max(hi);
        }
        assert!(
            covered <= total + total / 10,
            "trace {trace:#x}: stage span union ({covered}ns) exceeds EndToEnd ({total}ns) by >10%"
        );
        assert!(
            covered * 10 >= total * 9,
            "trace {trace:#x}: stage span union ({covered}ns) covers <90% of EndToEnd ({total}ns)"
        );

        // A full (non-early) trace carries the queue/batch/plan chain,
        // including the submit-side u8 resize (Preprocess, nested inside
        // Submit since the fused ingest path).
        for kind in [
            "Submit",
            "Preprocess",
            "QueueWait",
            "BatchForm",
            "PlanOp",
            "Publish",
        ] {
            assert!(
                spans.iter().any(|s| s.kind.group() == kind),
                "trace {trace:#x} is missing a {kind} span"
            );
        }
    }

    // The same run's Prometheus exposition renders the registry.
    let text = report.service.prometheus(None);
    for family in [
        "percival_shard_submitted_total",
        "percival_shard_queue_wait_seconds_total",
        "percival_shard_service_seconds_total",
        "percival_request_latency_seconds_bucket",
    ] {
        assert!(text.contains(family), "exposition is missing {family}");
    }
}
