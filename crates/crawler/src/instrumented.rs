//! The PERCIVAL-instrumented crawler.
//!
//! Section 4.4.2: "we use PERCIVAL's browser architecture to read all
//! image frames after the browser has decoded them, eliminating the race
//! condition between the browser displaying the content and the screenshot
//! ... every time the browser renders an image, we automatically store it
//! and label it using our initially trained network."

use crate::adapters::store_from_corpus;
use crate::dataset::Dataset;
use parking_lot::Mutex;
use percival_core::Classifier;
use percival_imgcodec::Bitmap;
use percival_renderer::net::AllowAll;
use percival_renderer::{ImageInterceptor, ImageMeta, InterceptAction, RenderPipeline};
use percival_webgen::sites::Corpus;

/// An interceptor that captures every decoded frame (and keeps them all).
#[derive(Default)]
pub struct CapturingInterceptor {
    captured: Mutex<Vec<(String, Bitmap)>>,
}

impl CapturingInterceptor {
    /// Creates an empty capture buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the captured `(url, bitmap)` pairs.
    pub fn take(&self) -> Vec<(String, Bitmap)> {
        std::mem::take(&mut self.captured.lock())
    }
}

impl ImageInterceptor for CapturingInterceptor {
    fn inspect(&self, bitmap: &mut Bitmap, meta: &ImageMeta<'_>) -> InterceptAction {
        self.captured
            .lock()
            .push((meta.url.to_string(), bitmap.clone()));
        InterceptAction::Keep
    }
}

/// How captured frames get their labels.
pub enum LabelSource<'a> {
    /// Ground truth from the corpus generator (oracle).
    Oracle,
    /// The current model's predictions — the paper's self-labeling
    /// bootstrap for later crawl phases.
    Model(&'a Classifier),
}

/// Crawls every page of `corpus` through the real rendering pipeline,
/// capturing decoded frames; returns a deduplicated labeled dataset.
pub fn crawl_instrumented(corpus: &Corpus, label: LabelSource<'_>) -> Dataset {
    let store = store_from_corpus(corpus);
    let pipeline = RenderPipeline::default();
    let capture = CapturingInterceptor::new();

    for page in &corpus.pages {
        // Pages come from the corpus, so a missing document is a bug.
        pipeline
            .render(&store, page, &capture, &AllowAll, &[])
            .expect("corpus page must render");
    }

    // Parallel raster workers capture frames in scheduling order; sort so
    // the dataset (and therefore training batch order and every model
    // trained on a crawl) is deterministic across runs and thread counts.
    let mut captured = capture.take();
    captured
        .sort_by(|(ua, ba), (ub, bb)| ua.cmp(ub).then(ba.content_hash().cmp(&bb.content_hash())));

    let mut dataset = Dataset::new();
    for (url, bitmap) in captured {
        let is_ad = match &label {
            LabelSource::Oracle => corpus.truth.get(&url).copied().unwrap_or(false),
            LabelSource::Model(classifier) => classifier.classify(&bitmap).is_ad,
        };
        dataset.push(bitmap, is_ad, url);
    }
    dataset.dedup();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use percival_webgen::sites::{generate_corpus, CorpusConfig};

    fn corpus() -> Corpus {
        generate_corpus(CorpusConfig {
            n_sites: 4,
            pages_per_site: 2,
            seed: 5,
            ..Default::default()
        })
    }

    #[test]
    fn captures_every_decoded_frame_without_blanks() {
        let c = corpus();
        let ds = crawl_instrumented(&c, LabelSource::Oracle);
        assert!(!ds.is_empty());
        // Race-free by construction: no white-space captures beyond any
        // genuinely-white generated creatives (tracking pixels are cleared
        // transparently but still tiny); require a low blank rate.
        assert!(
            ds.blank_fraction() < 0.2,
            "instrumented crawl should not race: {}",
            ds.blank_fraction()
        );
    }

    #[test]
    fn oracle_labels_match_corpus_truth() {
        let c = corpus();
        let ds = crawl_instrumented(&c, LabelSource::Oracle);
        for s in &ds.samples {
            if let Some(&truth) = c.truth.get(&s.source) {
                assert_eq!(s.is_ad, truth, "{}", s.source);
            }
        }
        let (ads, non_ads) = ds.class_counts();
        assert!(ads > 0 && non_ads > 0);
    }

    #[test]
    fn captures_iframe_creatives_too() {
        let c = corpus();
        let ds = crawl_instrumented(&c, LabelSource::Oracle);
        // The corpus stores iframe creatives on covered/uncovered ad hosts;
        // at least some syndicated creatives must be captured.
        let has_third_party_creative = ds
            .samples
            .iter()
            .any(|s| s.source.contains("adnet-") && s.is_ad);
        assert!(has_third_party_creative, "iframe ads should be captured");
    }

    #[test]
    fn dedup_makes_capture_unique() {
        let c = corpus();
        let ds = crawl_instrumented(&c, LabelSource::Oracle);
        let mut hashes: Vec<u64> = ds.samples.iter().map(|s| s.bitmap.content_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), ds.len());
    }
}
