//! The traditional crawler: EasyList labeling + element screenshots.
//!
//! Reproduces Section 4.4.1 (and the Section 5.2 dataset methodology):
//! every element matching an EasyList CSS rule is a potential ad container
//! and gets screenshotted; every image resource is labeled by the network
//! rules. It also reproduces the method's *defect*: "the page load event
//! is not very reliable when it comes to loading iframes ... many
//! screenshots end up with white-space instead of the image content" —
//! captures of dynamically-loaded content race the screenshot and come
//! back blank with a configurable probability.

use crate::adapters::DomElement;
use crate::dataset::Dataset;
use percival_filterlist::{FilterEngine, RequestInfo, ResourceType, Url};
use percival_imgcodec::{decode_auto, Bitmap};
use percival_renderer::html;
use percival_util::Pcg32;
use percival_webgen::sites::Corpus;

/// Traditional-crawl parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraditionalCrawlConfig {
    /// Probability a main-frame image screenshot races the load (blank).
    pub image_race_probability: f32,
    /// Probability an iframe screenshot races the load (blank) — higher,
    /// per the paper's observation.
    pub iframe_race_probability: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraditionalCrawlConfig {
    fn default() -> Self {
        TraditionalCrawlConfig {
            image_race_probability: 0.08,
            iframe_race_probability: 0.35,
            seed: 0xC7A3,
        }
    }
}

/// Crawl output: the labeled dataset plus the Figure 6 style statistics.
#[derive(Debug, Default)]
pub struct TraditionalCrawlReport {
    /// Screenshot dataset labeled by the filter list.
    pub dataset: Dataset,
    /// Elements inspected across all pages.
    pub elements_seen: usize,
    /// Elements matched by CSS (element-hiding) rules.
    pub css_matched: usize,
    /// Image/iframe resources inspected.
    pub requests_seen: usize,
    /// Resources matched by network rules.
    pub network_matched: usize,
    /// Screenshots that came back blank (the race).
    pub raced_captures: usize,
}

fn screenshot(
    corpus: &Corpus,
    url: &str,
    race_probability: f32,
    rng: &mut Pcg32,
    report: &mut TraditionalCrawlReport,
) -> Option<Bitmap> {
    let bytes = corpus.images.get(url)?;
    let decoded = decode_auto(bytes).ok()?;
    if rng.chance(race_probability) {
        // The element had not painted yet: white-space capture.
        report.raced_captures += 1;
        return Some(Bitmap::new(
            decoded.width().max(1),
            decoded.height().max(1),
            [255, 255, 255, 255],
        ));
    }
    Some(decoded)
}

/// Runs the traditional crawler over every page of `corpus`.
pub fn crawl_traditional(
    corpus: &Corpus,
    engine: &FilterEngine,
    cfg: TraditionalCrawlConfig,
) -> TraditionalCrawlReport {
    let mut rng = Pcg32::seed_from_u64(cfg.seed);
    let mut report = TraditionalCrawlReport::default();

    for page_url in &corpus.pages {
        let Some(source) = corpus.documents.get(page_url) else {
            continue;
        };
        let Ok(page) = Url::parse(page_url) else {
            continue;
        };
        let host = page.host().to_string();
        let doc = html::parse(source);

        for id in doc.walk() {
            let Some(tag) = doc.tag(id) else {
                continue;
            };
            report.elements_seen += 1;
            let el = DomElement::new(&doc, id);
            let css_hit = engine.should_hide(&host, &el);
            if css_hit {
                report.css_matched += 1;
            }

            match tag {
                "img" => {
                    let Some(src) = doc.attr(id, "src") else {
                        continue;
                    };
                    let Ok(url) = Url::parse(src) else {
                        continue;
                    };
                    report.requests_seen += 1;
                    let net_hit = engine.should_block(&RequestInfo {
                        url: &url,
                        source: &page,
                        resource_type: ResourceType::Image,
                    });
                    if net_hit {
                        report.network_matched += 1;
                    }
                    let is_ad = net_hit || css_hit;
                    if let Some(shot) = screenshot(
                        corpus,
                        src,
                        cfg.image_race_probability,
                        &mut rng,
                        &mut report,
                    ) {
                        report.dataset.push(shot, is_ad, src.to_string());
                    }
                }
                "iframe" => {
                    let Some(src) = doc.attr(id, "src") else {
                        continue;
                    };
                    let Ok(url) = Url::parse(src) else {
                        continue;
                    };
                    report.requests_seen += 1;
                    let net_hit = engine.should_block(&RequestInfo {
                        url: &url,
                        source: &page,
                        resource_type: ResourceType::Subdocument,
                    });
                    if net_hit {
                        report.network_matched += 1;
                    }
                    // Screenshot the iframe: find the creative inside its
                    // document; subject to the (higher) iframe race.
                    let Some(frame_html) = corpus.documents.get(src) else {
                        continue;
                    };
                    let frame_doc = html::parse(frame_html);
                    for img in frame_doc.elements_by_tag("img") {
                        let Some(creative) = frame_doc.attr(img, "src") else {
                            continue;
                        };
                        if let Some(shot) = screenshot(
                            corpus,
                            creative,
                            cfg.iframe_race_probability,
                            &mut rng,
                            &mut report,
                        ) {
                            report
                                .dataset
                                .push(shot, net_hit || css_hit, creative.to_string());
                        }
                    }
                }
                _ => {}
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use percival_filterlist::easylist::synthetic_engine;
    use percival_webgen::sites::{generate_corpus, CorpusConfig};

    fn crawl(seed: u64) -> TraditionalCrawlReport {
        let corpus = generate_corpus(CorpusConfig {
            n_sites: 6,
            pages_per_site: 2,
            seed,
            ..Default::default()
        });
        crawl_traditional(
            &corpus,
            &synthetic_engine(),
            TraditionalCrawlConfig::default(),
        )
    }

    #[test]
    fn produces_both_classes_with_plausible_match_rates() {
        let r = crawl(1);
        let (ads, non_ads) = r.dataset.class_counts();
        assert!(ads > 0, "some ads must be labeled");
        assert!(non_ads > 0, "some content must be labeled");
        assert!(r.elements_seen > 0);
        let css_rate = r.css_matched as f64 / r.elements_seen as f64;
        let net_rate = r.network_matched as f64 / r.requests_seen.max(1) as f64;
        // Figure 6 territory: CSS ~20%, network ~31% — allow a wide band.
        assert!((0.02..0.6).contains(&css_rate), "css rate {css_rate}");
        assert!((0.05..0.7).contains(&net_rate), "net rate {net_rate}");
    }

    #[test]
    fn race_produces_blank_captures() {
        let corpus = generate_corpus(CorpusConfig {
            n_sites: 6,
            pages_per_site: 2,
            seed: 3,
            ..Default::default()
        });
        let raced = crawl_traditional(
            &corpus,
            &synthetic_engine(),
            TraditionalCrawlConfig {
                image_race_probability: 0.9,
                iframe_race_probability: 0.9,
                seed: 1,
            },
        );
        assert!(raced.raced_captures > 0);
        assert!(
            raced.dataset.blank_fraction() > 0.4,
            "blank fraction {}",
            raced.dataset.blank_fraction()
        );
        let clean = crawl_traditional(
            &corpus,
            &synthetic_engine(),
            TraditionalCrawlConfig {
                image_race_probability: 0.0,
                iframe_race_probability: 0.0,
                seed: 1,
            },
        );
        assert_eq!(clean.raced_captures, 0);
    }

    #[test]
    fn crawl_is_deterministic() {
        let a = crawl(7);
        let b = crawl(7);
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(a.css_matched, b.css_matched);
        assert_eq!(a.network_matched, b.network_matched);
    }
}
