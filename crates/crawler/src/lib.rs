//! Crawlers and dataset assembly for PERCIVAL's training pipeline.
//!
//! The paper gathers training data two ways (Section 4.4): a *traditional*
//! crawler that applies EasyList rules and screenshots matched elements —
//! which suffers a race between iframe loading and the screenshot, leaving
//! white-space captures — and a *PERCIVAL-instrumented* crawler that reads
//! every frame directly from the image decoding pipeline, which is
//! race-free by construction. This crate implements both against the
//! synthetic web corpus, plus the glue between the filter-list engine and
//! the renderer ([`adapters`]), labeled-dataset bookkeeping ([`dataset`])
//! and the multi-phase crawl/retrain driver of Section 4.4.2 ([`phases`]).

pub mod adapters;
pub mod blocklist;
pub mod dataset;
pub mod instrumented;
pub mod phases;
pub mod traditional;

pub use adapters::{store_from_corpus, EngineNetworkFilter};
pub use blocklist::{generate_blocklist, GeneratedBlocklist};
pub use dataset::Dataset;
pub use instrumented::{crawl_instrumented, CapturingInterceptor};
pub use traditional::{crawl_traditional, TraditionalCrawlReport};
