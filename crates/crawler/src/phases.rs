//! The multi-phase crawl/retrain driver.
//!
//! Section 4.4.2: "We crawl for a total of 8 phases, retraining PERCIVAL
//! after each stage with the data obtained from the current and all the
//! previous crawls." Phase 0 bootstraps from the traditional
//! (EasyList-labeled) crawl; subsequent phases crawl fresh corpora with
//! the instrumented browser, label captures with the *current* model,
//! accumulate, rebalance and retrain.

use crate::instrumented::{crawl_instrumented, LabelSource};
use crate::traditional::{crawl_traditional, TraditionalCrawlConfig};
use percival_core::{evaluate, train, TrainConfig, TrainedModel};
use percival_filterlist::easylist::synthetic_engine;
use percival_util::Pcg32;
use percival_webgen::sites::{generate_corpus, CorpusConfig};

/// Outcome of one phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseReport {
    /// 0-based phase number (0 = traditional bootstrap).
    pub phase: usize,
    /// Cumulative training-set size after dedup/balancing.
    pub dataset_size: usize,
    /// Accuracy on the fixed held-out oracle set.
    pub holdout_accuracy: f64,
}

/// Phase-driver parameters.
#[derive(Debug, Clone)]
pub struct PhasesConfig {
    /// Number of instrumented phases after the bootstrap (paper: 8).
    pub phases: usize,
    /// Sites per phase corpus.
    pub sites_per_phase: usize,
    /// Pages per site.
    pub pages_per_site: usize,
    /// Seed for corpora and shuffles.
    pub seed: u64,
    /// Training configuration reused every retrain.
    pub train: TrainConfig,
}

impl Default for PhasesConfig {
    fn default() -> Self {
        PhasesConfig {
            phases: 3,
            sites_per_phase: 6,
            pages_per_site: 2,
            seed: 0x9A5E,
            train: TrainConfig::default(),
        }
    }
}

/// Runs the bootstrap + phased retraining loop; returns per-phase reports
/// and the final model.
pub fn run_phases(cfg: &PhasesConfig) -> (Vec<PhaseReport>, TrainedModel) {
    let engine = synthetic_engine();
    let mut rng = Pcg32::seed_from_u64(cfg.seed);

    // Fixed held-out evaluation set from its own corpus, oracle-labeled.
    let holdout_corpus = generate_corpus(CorpusConfig {
        n_sites: cfg.sites_per_phase,
        pages_per_site: cfg.pages_per_site,
        seed: cfg.seed ^ 0xFFFF_FFFF,
        ..Default::default()
    });
    let holdout = crawl_instrumented(&holdout_corpus, LabelSource::Oracle);
    let (holdout_bitmaps, holdout_labels) = holdout.as_training_views();

    // Phase 0: traditional bootstrap.
    let bootstrap_corpus = generate_corpus(CorpusConfig {
        n_sites: cfg.sites_per_phase,
        pages_per_site: cfg.pages_per_site,
        seed: cfg.seed,
        ..Default::default()
    });
    let mut accumulated = crawl_traditional(
        &bootstrap_corpus,
        &engine,
        TraditionalCrawlConfig {
            seed: rng.next_u64(),
            ..Default::default()
        },
    )
    .dataset;
    accumulated.dedup();
    accumulated.balance(&mut rng);

    let mut reports = Vec::new();
    let (bitmaps, labels) = accumulated.as_training_views();
    let mut model = train(&bitmaps, &labels, &cfg.train);
    reports.push(PhaseReport {
        phase: 0,
        dataset_size: accumulated.len(),
        holdout_accuracy: evaluate(&model.classifier, &holdout_bitmaps, &holdout_labels).accuracy(),
    });

    // Instrumented phases, self-labeled with the current model.
    for phase in 1..=cfg.phases {
        let corpus = generate_corpus(CorpusConfig {
            n_sites: cfg.sites_per_phase,
            pages_per_site: cfg.pages_per_site,
            seed: cfg.seed.wrapping_add(phase as u64 * 0x1234_5678),
            ..Default::default()
        });
        let new_data = crawl_instrumented(&corpus, LabelSource::Model(&model.classifier));
        accumulated.merge(new_data);
        accumulated.dedup();
        accumulated.balance(&mut rng);

        let (bitmaps, labels) = accumulated.as_training_views();
        model = train(&bitmaps, &labels, &cfg.train);
        reports.push(PhaseReport {
            phase,
            dataset_size: accumulated.len(),
            holdout_accuracy: evaluate(&model.classifier, &holdout_bitmaps, &holdout_labels)
                .accuracy(),
        });
    }
    (reports, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use percival_nn::StepLr;

    #[test]
    fn phased_retraining_grows_data_and_holds_accuracy() {
        let cfg = PhasesConfig {
            phases: 2,
            sites_per_phase: 12,
            pages_per_site: 2,
            train: TrainConfig {
                input_size: 32,
                width_divisor: 4,
                epochs: 10,
                batch_size: 16,
                schedule: StepLr {
                    base: 0.02,
                    gamma: 0.1,
                    every: 30,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let (reports, model) = run_phases(&cfg);
        assert_eq!(reports.len(), 3);
        // The accumulated dataset should not shrink.
        assert!(reports[2].dataset_size >= reports[0].dataset_size);
        // The final model should be usefully accurate on held-out data.
        let best = reports
            .iter()
            .map(|r| r.holdout_accuracy)
            .fold(0.0f64, f64::max);
        assert!(best > 0.65, "best phase accuracy too low: {reports:?}");
        let last = reports.last().unwrap();
        assert!(
            last.holdout_accuracy > 0.55,
            "self-labeling should not collapse the model: {reports:?}"
        );
        // Training on self-labeled data is noisy; just require that the
        // final retrain converged to something finite and non-degenerate.
        let final_loss = model.history.last().unwrap().loss;
        assert!(
            final_loss.is_finite() && final_loss < 1.5,
            "loss {final_loss}"
        );
    }
}
