//! Glue between the corpus, the filter-list engine and the renderer.

use percival_filterlist::{ElementLike, FilterEngine, RequestInfo, ResourceType, Url};
use percival_renderer::dom::{Document, NodeId};
use percival_renderer::net::{InMemoryStore, NetworkFilter, ResourceKind};
use percival_webgen::sites::Corpus;

/// Builds a renderer resource store from a generated corpus.
pub fn store_from_corpus(corpus: &Corpus) -> InMemoryStore {
    InMemoryStore::new(corpus.documents.clone(), corpus.images.clone())
}

/// Adapts a [`FilterEngine`] to the renderer's [`NetworkFilter`] — the
/// "Brave shields" request-blocking layer.
pub struct EngineNetworkFilter<'a> {
    engine: &'a FilterEngine,
}

impl<'a> EngineNetworkFilter<'a> {
    /// Wraps an engine.
    pub fn new(engine: &'a FilterEngine) -> Self {
        EngineNetworkFilter { engine }
    }
}

impl NetworkFilter for EngineNetworkFilter<'_> {
    fn allow(&self, url: &str, kind: ResourceKind, source_url: &str) -> bool {
        let (Ok(u), Ok(s)) = (Url::parse(url), Url::parse(source_url)) else {
            // Unparsable URLs cannot match rules; let the renderer surface
            // the failure downstream.
            return true;
        };
        let resource_type = match kind {
            ResourceKind::Image => ResourceType::Image,
            ResourceKind::Subdocument => ResourceType::Subdocument,
        };
        !self.engine.should_block(&RequestInfo {
            url: &u,
            source: &s,
            resource_type,
        })
    }
}

/// Adapts a renderer DOM node to the cosmetic-rule [`ElementLike`] view.
pub struct DomElement<'a> {
    doc: &'a Document,
    id: NodeId,
}

impl<'a> DomElement<'a> {
    /// Wraps element `id` of `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an element node.
    pub fn new(doc: &'a Document, id: NodeId) -> Self {
        assert!(doc.tag(id).is_some(), "node {id} is not an element");
        DomElement { doc, id }
    }
}

impl ElementLike for DomElement<'_> {
    fn tag_name(&self) -> &str {
        self.doc.tag(self.id).expect("constructor checked")
    }

    fn element_id(&self) -> Option<&str> {
        self.doc.element_id(self.id)
    }

    fn has_class(&self, class_name: &str) -> bool {
        self.doc.has_class(self.id, class_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use percival_filterlist::easylist::synthetic_engine;
    use percival_renderer::html::parse;
    use percival_webgen::sites::{generate_corpus, CorpusConfig};

    #[test]
    fn corpus_store_serves_documents_and_images() {
        let corpus = generate_corpus(CorpusConfig {
            n_sites: 2,
            pages_per_site: 1,
            ..Default::default()
        });
        let store = store_from_corpus(&corpus);
        use percival_renderer::net::ResourceStore;
        for page in &corpus.pages {
            assert!(store.get_document(page).is_some());
        }
        assert_eq!(store.image_count(), corpus.images.len());
    }

    #[test]
    fn engine_filter_blocks_listed_networks() {
        let engine = synthetic_engine();
        let filter = EngineNetworkFilter::new(&engine);
        assert!(!filter.allow(
            "http://adnet-alpha.web/serve/banner_728x90_1.png",
            ResourceKind::Image,
            "http://news0.web/"
        ));
        assert!(filter.allow(
            "http://news0.web/static/img/photo_1.png",
            ResourceKind::Image,
            "http://news0.web/"
        ));
        assert!(!filter.allow(
            "http://syndication.web/frame/1",
            ResourceKind::Subdocument,
            "http://news0.web/"
        ));
    }

    #[test]
    fn dom_element_adapter_exposes_classes() {
        let doc = parse("<div class=\"ad-banner big\" id=\"slot1\"></div>");
        let id = doc.elements_by_tag("div")[0];
        let el = DomElement::new(&doc, id);
        assert_eq!(el.tag_name(), "div");
        assert_eq!(el.element_id(), Some("slot1"));
        assert!(el.has_class("ad-banner"));
        assert!(!el.has_class("ad"));
        // Works with the engine's cosmetic matcher.
        let engine = synthetic_engine();
        assert!(engine.should_hide("news0.web", &el));
    }
}
