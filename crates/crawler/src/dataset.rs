//! Labeled image datasets: dedup, balancing, splits.
//!
//! Models the paper's post-processing: "we then post process the images to
//! remove duplicates ... we cap the number of non-ad images to the amount
//! of ad images to ensure a balanced dataset" (Section 4.4.2).

use percival_imgcodec::Bitmap;
use percival_util::Pcg32;
use std::collections::HashSet;

/// One labeled sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Decoded pixels.
    pub bitmap: Bitmap,
    /// Ground-truth (or model-assigned) label.
    pub is_ad: bool,
    /// Where the sample came from (URL or generator tag).
    pub source: String,
}

/// A labeled dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, bitmap: Bitmap, is_ad: bool, source: impl Into<String>) {
        self.samples.push(Sample {
            bitmap,
            is_ad,
            source: source.into(),
        });
    }

    /// Appends all samples of `other`.
    pub fn merge(&mut self, other: Dataset) {
        self.samples.extend(other.samples);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// `(ads, non_ads)` counts.
    pub fn class_counts(&self) -> (usize, usize) {
        let ads = self.samples.iter().filter(|s| s.is_ad).count();
        (ads, self.samples.len() - ads)
    }

    /// Removes duplicate images (by content hash), keeping first sightings.
    /// Returns how many were dropped.
    pub fn dedup(&mut self) -> usize {
        let mut seen = HashSet::new();
        let before = self.samples.len();
        self.samples
            .retain(|s| seen.insert(s.bitmap.content_hash()));
        before - self.samples.len()
    }

    /// Caps the majority class so both classes have equal counts,
    /// dropping the excess deterministically via `rng`. Returns dropped
    /// count.
    pub fn balance(&mut self, rng: &mut Pcg32) -> usize {
        let (ads, non_ads) = self.class_counts();
        let keep = ads.min(non_ads);
        let before = self.samples.len();
        // Shuffle so the dropped excess is a random subset.
        rng.shuffle(&mut self.samples);
        let mut kept_ads = 0usize;
        let mut kept_non = 0usize;
        self.samples.retain(|s| {
            if s.is_ad {
                kept_ads += 1;
                kept_ads <= keep
            } else {
                kept_non += 1;
                kept_non <= keep
            }
        });
        before - self.samples.len()
    }

    /// Splits into `(train, validation)` with `val_fraction` of samples in
    /// the validation part, after a shuffle.
    pub fn split(mut self, rng: &mut Pcg32, val_fraction: f32) -> (Dataset, Dataset) {
        rng.shuffle(&mut self.samples);
        let val_len = ((self.samples.len() as f32) * val_fraction.clamp(0.0, 1.0)) as usize;
        let val = self.samples.split_off(self.samples.len() - val_len);
        (self, Dataset { samples: val })
    }

    /// Borrowed views used by the trainer: `(bitmaps, labels)`.
    pub fn as_training_views(&self) -> (Vec<Bitmap>, Vec<bool>) {
        (
            self.samples.iter().map(|s| s.bitmap.clone()).collect(),
            self.samples.iter().map(|s| s.is_ad).collect(),
        )
    }

    /// Fraction of blank (all-zero or all-white) images — the paper's
    /// white-space screenshot failure mode.
    pub fn blank_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let blanks = self
            .samples
            .iter()
            .filter(|s| is_blankish(&s.bitmap))
            .count();
        blanks as f64 / self.samples.len() as f64
    }
}

/// True for cleared or solid-white captures.
pub fn is_blankish(bmp: &Bitmap) -> bool {
    if bmp.is_blank() {
        return true;
    }
    bmp.data()
        .chunks_exact(4)
        .all(|px| px[0] >= 250 && px[1] >= 250 && px[2] >= 250)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bmp(v: u8) -> Bitmap {
        Bitmap::new(4, 4, [v, v, v, 255])
    }

    #[test]
    fn dedup_drops_identical_content() {
        let mut ds = Dataset::new();
        ds.push(bmp(1), true, "a");
        ds.push(bmp(1), true, "b");
        ds.push(bmp(2), false, "c");
        assert_eq!(ds.dedup(), 1);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn balance_equalizes_classes() {
        let mut ds = Dataset::new();
        for i in 0..10 {
            ds.push(bmp(i), false, "n");
        }
        for i in 10..14 {
            ds.push(bmp(i), true, "a");
        }
        let dropped = ds.balance(&mut Pcg32::seed_from_u64(1));
        assert_eq!(dropped, 6);
        assert_eq!(ds.class_counts(), (4, 4));
    }

    #[test]
    fn split_partitions_everything() {
        let mut ds = Dataset::new();
        for i in 0..20 {
            ds.push(bmp(i), i % 2 == 0, "x");
        }
        let (train, val) = ds.split(&mut Pcg32::seed_from_u64(2), 0.25);
        assert_eq!(train.len(), 15);
        assert_eq!(val.len(), 5);
    }

    #[test]
    fn blank_detection() {
        assert!(is_blankish(&Bitmap::new(3, 3, [255, 255, 255, 255])));
        assert!(is_blankish(&Bitmap::new(3, 3, [0, 0, 0, 0])));
        assert!(!is_blankish(&bmp(128)));
        let mut ds = Dataset::new();
        ds.push(Bitmap::new(2, 2, [255, 255, 255, 255]), true, "race");
        ds.push(bmp(100), true, "ok");
        assert!((ds.blank_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Dataset::new();
        a.push(bmp(1), true, "a");
        let mut b = Dataset::new();
        b.push(bmp(2), false, "b");
        a.merge(b);
        assert_eq!(a.len(), 2);
    }
}
