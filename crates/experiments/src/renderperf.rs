//! The render-performance experiment shared by Figures 14 and 15.
//!
//! Renders every page of a benchmark corpus under four configurations —
//! matching Section 5.7's setup:
//!
//! - **Chromium**: no blocking at all;
//! - **Chromium + PERCIVAL**: the CNN hook in the rendering critical path;
//! - **Brave**: filter-list network blocking + cosmetic hiding ("shields");
//! - **Brave + PERCIVAL**: shields plus the CNN hook.
//!
//! Render time is the pipeline's total (the analogue of `domComplete -
//! domLoading`). Samples are cached to `results/render_times.csv` so the
//! two figure binaries don't re-measure.

use crate::harness::{results_dir, shared_classifier, ExperimentEnv};
use percival_core::PercivalHook;
use percival_crawler::adapters::{store_from_corpus, EngineNetworkFilter};
use percival_filterlist::easylist::synthetic_engine;
use percival_renderer::css::CssRule;
use percival_renderer::hook::NoopInterceptor;
use percival_renderer::net::AllowAll;
use percival_renderer::RenderPipeline;
use percival_webgen::sites::{generate_corpus, CorpusConfig};
use std::path::PathBuf;

/// The four measured configurations, in output order.
pub const CONFIGS: [&str; 4] = ["Chromium", "Chromium+PERCIVAL", "Brave", "Brave+PERCIVAL"];

/// Per-configuration render-time samples (milliseconds, one per page).
#[derive(Debug, Clone, Default)]
pub struct RenderPerfData {
    /// `samples[i]` belongs to `CONFIGS[i]`.
    pub samples: [Vec<f64>; 4],
}

fn cache_path() -> PathBuf {
    results_dir().join("render_times.csv")
}

fn save(data: &RenderPerfData) {
    let mut out = String::from("config,ms\n");
    for (i, series) in data.samples.iter().enumerate() {
        for v in series {
            out.push_str(&format!("{},{v}\n", CONFIGS[i]));
        }
    }
    let _ = std::fs::write(cache_path(), out);
}

fn load() -> Option<RenderPerfData> {
    let text = std::fs::read_to_string(cache_path()).ok()?;
    let mut data = RenderPerfData::default();
    for line in text.lines().skip(1) {
        let (name, v) = line.split_once(',')?;
        let idx = CONFIGS.iter().position(|c| *c == name)?;
        data.samples[idx].push(v.parse().ok()?);
    }
    if data.samples.iter().all(|s| !s.is_empty()) {
        Some(data)
    } else {
        None
    }
}

/// Builds the cosmetic-hiding rules Brave injects, from the filter list.
fn shield_css(engine: &percival_filterlist::FilterEngine) -> Vec<CssRule> {
    // Inject every global cosmetic rule; domain-scoped rules are few in the
    // synthetic list and injecting them globally only hides ad containers.
    engine
        .cosmetic_rules_for("news0.web")
        .into_iter()
        .filter_map(|r| {
            // Rebuild the selector string from its parsed form.
            let mut s = String::new();
            if let Some(tag) = &r.selector.tag {
                s.push_str(tag);
            }
            if let Some(id) = &r.selector.id {
                s.push('#');
                s.push_str(id);
            }
            for c in &r.selector.classes {
                s.push('.');
                s.push_str(c);
            }
            CssRule::hide(&s)
        })
        .collect()
}

/// Runs (or loads) the experiment: renders `pages` pages per configuration.
pub fn measure(
    env: &ExperimentEnv,
    n_sites: usize,
    pages_per_site: usize,
    force: bool,
) -> RenderPerfData {
    if !force {
        if let Some(cached) = load() {
            eprintln!(
                "[renderperf] loaded cached samples from {}",
                cache_path().display()
            );
            return cached;
        }
    }

    let classifier = shared_classifier(env);
    let corpus = generate_corpus(CorpusConfig {
        n_sites,
        pages_per_site,
        seed: env.seed ^ 0xBE9C,
        ..Default::default()
    });
    let store = store_from_corpus(&corpus);
    let engine = synthetic_engine();
    let shields = EngineNetworkFilter::new(&engine);
    let css = shield_css(&engine);
    let pipeline = RenderPipeline::default();

    let mut data = RenderPerfData::default();
    for (i, config) in CONFIGS.iter().enumerate() {
        eprintln!(
            "[renderperf] measuring {config} over {} pages...",
            corpus.pages.len()
        );
        // A fresh hook per configuration so memoization state is per-run.
        let hook = PercivalHook::new(classifier.clone());
        for page in &corpus.pages {
            let out = match i {
                0 => pipeline.render(&store, page, &NoopInterceptor, &AllowAll, &[]),
                1 => pipeline.render(&store, page, &hook, &AllowAll, &[]),
                2 => pipeline.render(&store, page, &NoopInterceptor, &shields, &css),
                _ => pipeline.render(&store, page, &hook, &shields, &css),
            }
            .expect("corpus page must render");
            data.samples[i].push(out.timing.total_ms);
        }
    }
    save(&data);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shield_css_only_contains_hiding_rules() {
        let engine = synthetic_engine();
        let rules = shield_css(&engine);
        assert!(!rules.is_empty());
        assert!(rules.iter().all(|r| r.decls.display_none));
    }

    #[test]
    fn csv_roundtrip() {
        let mut data = RenderPerfData::default();
        for (i, s) in data.samples.iter_mut().enumerate() {
            s.push(10.0 + i as f64);
            s.push(20.0 + i as f64);
        }
        save(&data);
        let loaded = load().expect("cache written");
        assert_eq!(loaded.samples[3], vec![13.0, 23.0]);
        let _ = std::fs::remove_file(cache_path());
    }
}
