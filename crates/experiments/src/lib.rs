//! Shared experiment harness: one cached trained model, table formatting,
//! and the render-performance experiment reused by Figures 14 and 15.
//!
//! Every `fig*` binary regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md` for the index) and prints a paper-vs-
//! measured comparison. Results and artifacts land in `results/`.

pub mod harness;
pub mod renderperf;
pub mod report;

pub use harness::{shared_classifier, ExperimentEnv};
