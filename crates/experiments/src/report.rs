//! Minimal fixed-width table printing for experiment reports.

/// Prints a titled table: header row then data rows, columns padded to the
/// widest cell.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            s.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a ratio as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a fraction with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// A paper-vs-measured comparison line.
pub fn compare(metric: &str, paper: &str, measured: &str) -> Vec<String> {
    vec![metric.to_string(), paper.to_string(), measured.to_string()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9676), "96.76%");
        assert_eq!(f3(0.8154), "0.815");
        assert_eq!(compare("acc", "a", "b"), vec!["acc", "a", "b"]);
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into()], vec!["1".into(), "2".into(), "3".into()]],
        );
    }
}
