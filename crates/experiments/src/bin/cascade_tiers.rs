//! Tier-ablation matrix for the cascade front-end.
//!
//! The paper argues PERCIVAL should run *behind* block lists, paying the
//! CNN's cost only on the residual the lists miss (Sections 1, 5.2). This
//! experiment drives the same seed-deterministic mixed workload through
//! every tier configuration of the cascade — CNN-only, filter-only,
//! structural-only, and the full cascade — and tabulates where requests
//! resolve, what reaches the CNN, and what that buys in throughput.
//! Mirrors the `PERCIVAL_CASCADE` knob: each row is one of its values.

use percival_core::cascade::{Cascade, CascadeConfig};
use percival_experiments::harness::{shared_classifier, ExperimentEnv};
use percival_experiments::report::{pct, print_table};
use percival_serve::loadgen::{self, TrafficConfig, TrafficPattern};
use percival_serve::{ClassificationService, OverloadPolicy, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let env = ExperimentEnv::default();
    let traffic = TrafficConfig {
        seed: 0x5EED,
        creatives: 96,
        ad_fraction: 0.5,
        zipf_s: 0.9,
        requests: 768,
        pattern: TrafficPattern::ClosedLoop,
        edge: 48,
    };

    let modes: [(&str, CascadeConfig); 4] = [
        (
            "off (CNN only)",
            CascadeConfig {
                network_filter: false,
                structural: false,
                ..CascadeConfig::default()
            },
        ),
        (
            "t0 (filter only)",
            CascadeConfig {
                structural: false,
                ..CascadeConfig::default()
            },
        ),
        (
            "t1 (structural only)",
            CascadeConfig {
                network_filter: false,
                ..CascadeConfig::default()
            },
        ),
        ("full", CascadeConfig::default()),
    ];

    let mut rows = Vec::new();
    let mut baseline_rps = None;
    for (name, config) in modes {
        let svc = ClassificationService::new(
            shared_classifier(&env),
            ServiceConfig {
                overload: OverloadPolicy::Block,
                deadline: Duration::from_secs(600),
                ..Default::default()
            },
        );
        let cascade = Arc::new(Cascade::synthetic_with(config));
        let r = loadgen::run_cascade(&svc, &cascade, &traffic);
        assert_eq!(r.lost, 0, "{name}: lost tickets");
        let n = r.requests as f64;
        let speedup = match baseline_rps {
            None => {
                baseline_rps = Some(r.achieved_rps);
                1.0
            }
            Some(base) => r.achieved_rps / base,
        };
        rows.push(vec![
            name.to_string(),
            pct((r.tier0_blocked + r.tier0_exempted) as f64 / n),
            pct((r.tier1_blocked + r.tier1_kept) as f64 / n),
            pct(r.cnn_submitted as f64 / n),
            pct(r.early_fraction()),
            format!("{:.0}", r.achieved_rps),
            format!("{speedup:.2}x"),
        ]);
    }

    print_table(
        "Cascade tier ablation (mixed workload, 768 requests, 50% ad creatives)",
        &[
            "mode", "tier 0", "tier 1", "cnn", "early", "req/s", "speedup",
        ],
        &rows,
    );
    println!(
        "\nTier fractions are where requests resolved; `early` is traffic that\n\
         never touched a flight queue. `speedup` is throughput vs the CNN-only\n\
         baseline on the identical request sequence."
    );
}
