//! Figure 7 / Section 5.2: can PERCIVAL replicate EasyList?
//!
//! The paper's headline accuracy: on 6,930 element screenshots labeled by
//! EasyList rules, the CNN replicates the labels with accuracy 96.76%,
//! precision 97.76%, recall 95.72%. We evaluate the shared model against
//! an EasyList-labeled traditional crawl of a held-out corpus.

use percival_core::evaluate;
use percival_crawler::traditional::{crawl_traditional, TraditionalCrawlConfig};
use percival_experiments::harness::{shared_classifier, ExperimentEnv};
use percival_experiments::report::{compare, f3, pct, print_table};
use percival_filterlist::easylist::synthetic_engine;
use percival_webgen::sites::{generate_corpus, CorpusConfig};

fn main() {
    let env = ExperimentEnv::default();
    let classifier = shared_classifier(&env);

    // Held-out corpus (different seed from the training crawl), labeled by
    // the filter list exactly as in the paper's methodology.
    let corpus = generate_corpus(CorpusConfig {
        n_sites: 40,
        pages_per_site: 3,
        seed: env.seed ^ 0xEA51,
        ..Default::default()
    });
    let engine = synthetic_engine();
    let mut report = crawl_traditional(
        &corpus,
        &engine,
        // The evaluation set mirrors the paper's manually-cleaned
        // screenshots: no race-blanked captures.
        TraditionalCrawlConfig {
            image_race_probability: 0.0,
            iframe_race_probability: 0.0,
            seed: 7,
        },
    );
    report.dataset.dedup();

    let (bitmaps, labels) = report.dataset.as_training_views();
    let ads = labels.iter().filter(|&&a| a).count();
    let cm = evaluate(&classifier, &bitmaps, &labels);

    print_table(
        "Figure 7 — replicating EasyList labels",
        &["metric", "paper", "measured"],
        &[
            compare("images", "6,930", &bitmaps.len().to_string()),
            compare("ads identified", "3,466", &ads.to_string()),
            compare("accuracy", "96.76%", &pct(cm.accuracy())),
            compare("precision", "97.76%", &f3(cm.precision())),
            compare("recall", "95.72%", &f3(cm.recall())),
        ],
    );
    println!(
        "\nConfusion: TP {} TN {} FP {} FN {}",
        cm.tp, cm.tn, cm.fp, cm.fn_
    );
}
