//! Section 4.4.2 / Figure 5: the crawl-label-retrain loop.
//!
//! The paper crawled in 8 phases over 4 months, retraining after each with
//! cumulative data, with the instrumented browser labeling captures via
//! the current network. We run a scaled-down version and report dataset
//! growth and held-out accuracy per phase.

use percival_crawler::phases::{run_phases, PhasesConfig};
use percival_experiments::report::{pct, print_table};
use percival_nn::StepLr;

fn main() {
    let cfg = PhasesConfig {
        phases: 4,
        sites_per_phase: 12,
        pages_per_site: 2,
        seed: 0x05EC_44AA,
        train: percival_core::TrainConfig {
            input_size: 48,
            width_divisor: 4,
            epochs: 8,
            batch_size: 24,
            momentum: 0.9,
            schedule: StepLr {
                base: 0.02,
                gamma: 0.1,
                every: 30,
            },
            seed: 0x5EC4,
            pretrained: None,
        },
    };
    eprintln!(
        "[sec44] running bootstrap + {} instrumented phases...",
        cfg.phases
    );
    let (reports, model) = run_phases(&cfg);

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                if r.phase == 0 {
                    "0 (traditional bootstrap)".to_string()
                } else {
                    format!("{} (instrumented, self-labeled)", r.phase)
                },
                r.dataset_size.to_string(),
                pct(r.holdout_accuracy),
            ]
        })
        .collect();
    print_table(
        "Section 4.4.2 — phased crawl + retrain",
        &["phase", "cumulative dataset", "held-out accuracy"],
        &rows,
    );
    println!(
        "\nFinal model training accuracy: {:.3} (paper: 8 phases, 63,000 \
         unique images; ours is a scaled-down but mechanically identical loop).",
        model.history.last().map(|h| h.accuracy).unwrap_or(0.0)
    );
}
