//! Per-op breakdown of the full-224 forward pass, via [`PlanProfile`].
//!
//! Attaches the plan observer to the compiled execution plan and runs both
//! precision tiers, sequential and pipelined, over the real PERCIVAL net —
//! the same instrumentation path the flight recorder's `PlanOp` spans ride,
//! so the table here is exactly what a sampled production trace reports.
//! (This replaces the old hand-rolled conv-by-conv timing loop: per-op
//! observation is now a first-class plan feature.)
//!
//! On a single-thread pool (`PERCIVAL_THREADS=1` or a 1-core host) the
//! pipelined run degrades to the sequential path; set `PERCIVAL_THREADS`
//! higher to see fire-module expand pairs overlap.

use percival_core::percival_net;
use percival_nn::{ExecPlan, PlanProfile, QuantizedSequential};
use percival_tensor::gemm::{set_gemm_kernel, GemmKernel};
use percival_tensor::{Shape, ThreadPool, Workspace};

fn main() {
    set_gemm_kernel(GemmKernel::Simd);
    let model = percival_net();
    let mut plan = ExecPlan::compile(&model);
    let q = QuantizedSequential::from_model(&model);
    plan.attach_quantized(&q);

    let shape = Shape::new(1, 4, 224, 224);
    let data: Vec<f32> = (0..shape.count())
        .map(|i| ((i * 37) % 255) as f32 / 255.0 - 0.5)
        .collect();
    let mut ws = Workspace::new();
    let threads = ThreadPool::global().parallelism();
    println!(
        "percival_net full-224, prepacked {:?} (f32, i8 convs), pool threads: {threads}",
        plan.prepacked()
    );

    const REPS: u32 = 3;
    type Run<'a> = (&'a str, Box<dyn Fn(&PlanProfile, &mut Workspace) + 'a>);
    let runs: [Run<'_>; 4] = [
        (
            "f32 sequential",
            Box::new(|p, ws| {
                plan.run_f32_sequential_observed(&model, shape, &data, ws, p);
            }),
        ),
        (
            "f32 pipelined",
            Box::new(|p, ws| {
                plan.run_f32_observed(&model, shape, &data, ws, p);
            }),
        ),
        (
            "int8 sequential",
            Box::new(|p, ws| {
                plan.run_i8_sequential_observed(&q, shape, &data, ws, p);
            }),
        ),
        (
            "int8 pipelined",
            Box::new(|p, ws| {
                plan.run_i8_observed(&q, shape, &data, ws, p);
            }),
        ),
    ];

    for (name, run) in &runs {
        // Warm up (first call pays workspace growth), then profile.
        let warmup = PlanProfile::new();
        run(&warmup, &mut ws);
        let profile = PlanProfile::new();
        for _ in 0..REPS {
            run(&profile, &mut ws);
        }
        println!(
            "\n== {name} ({REPS} reps, {:.3}ms/pass) ==",
            profile.total_ns() as f64 / REPS as f64 / 1e6
        );
        print!("{}", profile.table());
    }
}
