//! Per-conv breakdown of the int8 full-224 forward pass: for every conv
//! in the PERCIVAL net, time the full fused prepacked conv
//! (quantize + im2col + B-pack + GEMM + epilogue) against the bare
//! prepacked GEMM on the same shape, to locate non-GEMM overhead.

use std::time::Instant;

use percival_core::percival_net;
use percival_nn::{QLayer, QuantizedSequential};
use percival_tensor::gemm::{set_gemm_kernel, GemmKernel};
use percival_tensor::{
    gemm_i8_fused_prepacked, Conv2dCfg, PackedGemmI8, RequantEpilogue, Shape, Tensor, Workspace,
};

fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    // Warm up, then take the best of 5 timed reps of 3 iterations.
    f();
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..3 {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1000.0 / 3.0);
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn profile_conv(
    name: &str,
    in_shape: Shape,
    weight_q: &[i8],
    wshape: Shape,
    scales: &[f32],
    bias: &[f32],
    cfg: Conv2dCfg,
    relu: bool,
    totals: &mut (f64, f64),
) -> Shape {
    let m = wshape.n;
    let k = wshape.c * wshape.h * wshape.w;
    let oh = (in_shape.h + 2 * cfg.pad - wshape.h) / cfg.stride + 1;
    let ow = (in_shape.w + 2 * cfg.pad - wshape.w) / cfg.stride + 1;
    let n = oh * ow;

    let pq = PackedGemmI8::pack(weight_q, m, k);
    let mut ws = Workspace::new();

    // Full fused conv (quantize + gather + pack B + GEMM + epilogue).
    let data: Vec<f32> = (0..in_shape.count())
        .map(|i| ((i * 37) % 255) as f32 / 255.0 - 0.5)
        .collect();
    let input = Tensor::from_vec(in_shape, data);
    let conv_ms = time_ms(|| {
        let out = percival_tensor::conv::conv2d_forward_q8_fused_pre(
            &input,
            None,
            weight_q,
            Some(&pq),
            wshape,
            scales,
            bias,
            cfg,
            relu,
            None,
            &mut ws,
        );
        std::hint::black_box(out.as_slice()[0]);
    });

    // Bare prepacked GEMM on the same shape with pre-made i8 B.
    let bq: Vec<i8> = (0..k * n).map(|i| ((i * 31) % 255) as i8).collect();
    let mut out = vec![0.0f32; m * n];
    let ep = RequantEpilogue {
        scale_x: 0.01,
        weight_scales: scales,
        bias,
        relu,
        track_max: false,
    };
    let gemm_ms = time_ms(|| {
        std::hint::black_box(gemm_i8_fused_prepacked(&pq, &bq, &mut out, n, &mut ws, &ep));
    });

    println!(
        "{name:<14} m={m:<4} k={k:<5} n={n:<6} conv {conv_ms:7.3}ms  gemm {gemm_ms:7.3}ms  overhead {:7.3}ms",
        conv_ms - gemm_ms
    );
    totals.0 += conv_ms;
    totals.1 += gemm_ms;
    Shape::new(in_shape.n, m, oh, ow)
}

fn main() {
    set_gemm_kernel(GemmKernel::Simd);
    let model = percival_net();
    let q = QuantizedSequential::from_model(&model);
    let mut s = Shape::new(1, 4, 224, 224);
    let mut totals = (0.0, 0.0);
    for (i, layer) in q.layers.iter().enumerate() {
        match layer {
            QLayer::Conv(c) => {
                let out = profile_conv(
                    &format!("conv[{i}]"),
                    s,
                    &c.weight_q,
                    c.weight_shape,
                    &c.scales,
                    &c.bias,
                    c.cfg,
                    false,
                    &mut totals,
                );
                s = out;
            }
            QLayer::Fire(f) => {
                let sq = profile_conv(
                    &format!("fire[{i}].sq"),
                    s,
                    &f.squeeze.weight_q,
                    f.squeeze.weight_shape,
                    &f.squeeze.scales,
                    &f.squeeze.bias,
                    f.squeeze.cfg,
                    true,
                    &mut totals,
                );
                let e1 = profile_conv(
                    &format!("fire[{i}].e1"),
                    sq,
                    &f.expand1.weight_q,
                    f.expand1.weight_shape,
                    &f.expand1.scales,
                    &f.expand1.bias,
                    f.expand1.cfg,
                    true,
                    &mut totals,
                );
                let e3 = profile_conv(
                    &format!("fire[{i}].e3"),
                    sq,
                    &f.expand3.weight_q,
                    f.expand3.weight_shape,
                    &f.expand3.scales,
                    &f.expand3.bias,
                    f.expand3.cfg,
                    true,
                    &mut totals,
                );
                s = Shape::new(sq.n, e1.c + e3.c, e1.h, e1.w);
            }
            QLayer::Relu => {}
            QLayer::MaxPool(cfg) => {
                s = Shape::new(
                    s.n,
                    s.c,
                    (s.h - cfg.kernel) / cfg.stride + 1,
                    (s.w - cfg.kernel) / cfg.stride + 1,
                );
            }
            QLayer::GlobalAvgPool => s = Shape::new(s.n, s.c, 1, 1),
        }
    }
    println!(
        "TOTAL          conv {:7.3}ms  gemm {:7.3}ms  overhead {:7.3}ms",
        totals.0,
        totals.1,
        totals.0 - totals.1
    );
}
