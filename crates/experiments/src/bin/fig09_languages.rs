//! Figure 9 / Section 5.5: language-agnostic detection.
//!
//! The model is trained on (mostly English) Latin-script creatives; the
//! paper evaluates on human-labeled regional crawls: Arabic 81.3%,
//! Spanish 95.1%, French 93.9%, Korean 76.9%, Chinese 80.4%. We evaluate
//! the shared model on per-script generator sets; the expected *shape* is
//! strong transfer to Latin-like scripts and weaker transfer to
//! visually-distant ones.

use percival_core::evaluate;
use percival_experiments::harness::{shared_classifier, ExperimentEnv};
use percival_experiments::report::{f3, pct, print_table};
use percival_util::Pcg32;
use percival_webgen::profile::{sample_image, DatasetProfile};
use percival_webgen::Script;

fn main() {
    let env = ExperimentEnv::default();
    let classifier = shared_classifier(&env);

    // Per-language image counts, scaled ~1/4 from the paper's crawls.
    let plan: [(Script, usize, &str, &str, &str); 5] = [
        (Script::Arabic, 1252, "81.3%", "0.833", "0.825"),
        (Script::Spanish, 634, "95.1%", "0.768", "0.889"),
        (Script::French, 604, "93.9%", "0.776", "0.904"),
        (Script::Korean, 1074, "76.9%", "0.540", "0.920"),
        (Script::Chinese, 524, "80.4%", "0.742", "0.715"),
    ];

    let mut rows = Vec::new();
    for (script, count, paper_acc, paper_p, paper_r) in plan {
        let mut rng = Pcg32::seed_from_u64(0x1A26 ^ count as u64);
        let mut bitmaps = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let s = sample_image(
                &mut rng,
                DatasetProfile::Alexa,
                script,
                env.input_size,
                i % 2 == 0,
            );
            bitmaps.push(s.bitmap);
            labels.push(s.is_ad);
        }
        let cm = evaluate(&classifier, &bitmaps, &labels);
        rows.push(vec![
            script.name().to_string(),
            count.to_string(),
            format!("{paper_acc} / {}", pct(cm.accuracy())),
            format!("{paper_p} / {}", f3(cm.precision())),
            format!("{paper_r} / {}", f3(cm.recall())),
        ]);
        eprintln!("[fig09] {} done", script.name());
    }
    print_table(
        "Figure 9 — non-English ads (paper / measured)",
        &["language", "images", "accuracy", "precision", "recall"],
        &rows,
    );
    println!(
        "\nExpected shape: Spanish/French (Latin-like glyph geometry) transfer \
         best; Arabic/Korean/Chinese transfer worse — matching the paper's ordering."
    );
}
