//! Figure 14 / Section 5.7: render-time CDF across configurations.
//!
//! The paper plots the CDF of page render time (log-scale ms) for
//! Chromium and Brave, each with and without PERCIVAL in the critical
//! path. We render the benchmark corpus under the same four
//! configurations, print a percentile summary, and write the full CDF
//! series to `results/fig14_cdf.csv`.

use percival_experiments::harness::{results_dir, ExperimentEnv};
use percival_experiments::renderperf::{measure, CONFIGS};
use percival_experiments::report::print_table;
use percival_util::stats::{cdf, percentile};

fn main() {
    let env = ExperimentEnv::default();
    let data = measure(&env, 30, 4, false);

    // CSV with every CDF point for external plotting.
    let mut csv = String::from("config,ms,fraction\n");
    for (i, series) in data.samples.iter().enumerate() {
        for point in cdf(series) {
            csv.push_str(&format!(
                "{},{:.3},{:.4}\n",
                CONFIGS[i], point.value, point.fraction
            ));
        }
    }
    let path = results_dir().join("fig14_cdf.csv");
    std::fs::write(&path, csv).expect("results must be writable");

    let mut rows = Vec::new();
    for (i, series) in data.samples.iter().enumerate() {
        let p = |q: f64| percentile(series, q).unwrap_or(0.0);
        rows.push(vec![
            CONFIGS[i].to_string(),
            series.len().to_string(),
            format!("{:.1}", p(10.0)),
            format!("{:.1}", p(50.0)),
            format!("{:.1}", p(90.0)),
            format!("{:.1}", p(99.0)),
        ]);
    }
    print_table(
        "Figure 14 — render time percentiles (ms)",
        &["config", "pages", "p10", "p50", "p90", "p99"],
        &rows,
    );
    println!("\nFull CDF series written to {}", path.display());
    println!(
        "Expected shape: the +PERCIVAL curves sit right of their baselines, \
         with the Brave pair left of the Chromium pair (shields remove work)."
    );
}
