//! Figure 6 / Section 5.2: dataset construction and EasyList match rates.
//!
//! The paper built two 5,000-element datasets from Alexa top-500 news
//! sites and reports how many elements the list matched: CSS rules 20.2%,
//! network rules 31.1%. We crawl the synthetic corpus with the traditional
//! crawler and report the same quantities.

use percival_crawler::traditional::{crawl_traditional, TraditionalCrawlConfig};
use percival_experiments::report::{compare, pct, print_table};
use percival_filterlist::easylist::synthetic_engine;
use percival_webgen::sites::{generate_corpus, CorpusConfig};

fn main() {
    let corpus = generate_corpus(CorpusConfig {
        n_sites: 60,
        pages_per_site: 4,
        seed: 0xF166,
        ..Default::default()
    });
    let engine = synthetic_engine();
    let report = crawl_traditional(&corpus, &engine, TraditionalCrawlConfig::default());

    let css_rate = report.css_matched as f64 / report.elements_seen.max(1) as f64;
    let net_rate = report.network_matched as f64 / report.requests_seen.max(1) as f64;

    print_table(
        "Figure 6 — dataset and EasyList match rates",
        &["metric", "paper", "measured"],
        &[
            compare(
                "elements inspected",
                "5,000",
                &report.elements_seen.to_string(),
            ),
            compare("CSS-rule match rate", "20.2%", &pct(css_rate)),
            compare(
                "requests inspected",
                "5,000",
                &report.requests_seen.to_string(),
            ),
            compare("network-rule match rate", "31.1%", &pct(net_rate)),
        ],
    );
    let (ads, non_ads) = report.dataset.class_counts();
    print_table(
        "Screenshot dataset",
        &["metric", "value"],
        &[
            vec![
                "screenshots captured".into(),
                report.dataset.len().to_string(),
            ],
            vec!["labeled ad".into(), ads.to_string()],
            vec!["labeled non-ad".into(), non_ads.to_string()],
            vec![
                "raced (white-space) captures".into(),
                format!(
                    "{} ({:.1}% of dataset)",
                    report.raced_captures,
                    report.dataset.blank_fraction() * 100.0
                ),
            ],
        ],
    );
    println!(
        "\nThe white-space captures reproduce the race the paper describes in \
         Section 4.4.2; the instrumented crawler (sec44_phases) eliminates them."
    );
}
