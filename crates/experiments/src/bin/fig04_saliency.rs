//! Figure 4 / Section 5.6: Grad-CAM salience maps.
//!
//! Computes Grad-CAM on sample ad and non-ad images at a shallow and a
//! deep layer, prints ASCII heat maps, writes PGM artifacts to `results/`,
//! and quantifies how much heat falls on the AdChoices-marker corner.

use percival_core::Classifier;
use percival_experiments::harness::{results_dir, shared_classifier, ExperimentEnv};
use percival_imgcodec::ppm::encode_pgm;
use percival_nn::gradcam::grad_cam;
use percival_util::Pcg32;
use percival_webgen::images::{generate_ad, generate_nonad, AdCues, AdStyle, NonAdStyle};
use percival_webgen::Script;

fn save_heat(name: &str, heat: &percival_tensor::Tensor) {
    let s = heat.shape();
    let gray: Vec<u8> = heat
        .as_slice()
        .iter()
        .map(|v| (v.clamp(0.0, 1.0) * 255.0) as u8)
        .collect();
    let path = results_dir().join(format!("fig04_{name}.pgm"));
    std::fs::write(&path, encode_pgm(&gray, s.w, s.h)).expect("results must be writable");
    println!("  wrote {}", path.display());
}

fn main() {
    let env = ExperimentEnv::default();
    let classifier = shared_classifier(&env);
    let size = env.input_size;
    let mut rng = Pcg32::seed_from_u64(7);

    // Layer indices in the slim net: 3 = fire1 output (shallow),
    // 9 = fire6 output (deep, just before the classifier conv).
    let shallow = 3usize;
    let deep = 9usize;

    let cues = AdCues {
        adchoices: 1.0,
        ..AdCues::default()
    };
    let samples = [
        (
            "ad_banner",
            generate_ad(&mut rng, size, size, Script::Latin, AdStyle::Banner, cues),
            true,
        ),
        (
            "ad_rect",
            generate_ad(
                &mut rng,
                size,
                size,
                Script::Latin,
                AdStyle::Rectangle,
                cues,
            ),
            true,
        ),
        (
            "ad_promo",
            generate_ad(
                &mut rng,
                size,
                size,
                Script::Latin,
                AdStyle::ProductPromo,
                cues,
            ),
            true,
        ),
        (
            "nonad_photo",
            generate_nonad(&mut rng, size, size, Script::Latin, NonAdStyle::Photo),
            false,
        ),
    ];

    for (name, bitmap, is_ad) in &samples {
        let input = Classifier::preprocess(bitmap, size);
        let class = usize::from(*is_ad);
        for (tag, layer) in [("shallow", shallow), ("deep", deep)] {
            let cam = grad_cam(classifier.model(), &input, class, layer);
            println!(
                "\n-- {name} ({tag} layer {layer}, class {}) --",
                if *is_ad { "ad" } else { "non-ad" }
            );
            print!("{}", cam.to_ascii(32));
            save_heat(&format!("{name}_{tag}"), &cam.heat);
            if *is_ad {
                // The AdChoices marker sits in the top-right ~20% corner.
                let frac = cam.heat_fraction_in(size * 7 / 10, 0, size, size * 3 / 10);
                println!(
                    "  heat in AdChoices corner: {:.1}% (corner is {:.1}% of area)",
                    frac * 100.0,
                    0.3 * 0.3 * 100.0
                );
            }
        }
    }
    println!(
        "\nPaper's qualitative claim: the network attends to ad cues \
         (disclosure marker, text outlines, product objects)."
    );
}
