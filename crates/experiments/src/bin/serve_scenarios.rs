//! Serving-layer scenario matrix over the shared trained model.
//!
//! The paper deploys one classifier inside one browser; the ROADMAP
//! north-star serves a fleet. This experiment drives the sharded
//! classification service through the workload shapes a fleet actually
//! sees — steady load, ramps, square-wave bursts, hot-creative skew, and
//! 2x-capacity overload under each overload policy — and tabulates
//! throughput, tail latency, dedup and shed/degrade behavior. Traffic is
//! seed-deterministic (same creatives, same arrival plan); only
//! timing-dependent shed decisions vary between hosts.

use percival_experiments::harness::{shared_classifier, ExperimentEnv};
use percival_experiments::report::{pct, print_table};
use percival_serve::loadgen::{self, calibrate_capacity_rps, TrafficConfig, TrafficPattern};
use percival_serve::{ClassificationService, OverloadPolicy, ServiceConfig};
use std::time::Duration;

fn service(
    overload: OverloadPolicy,
    deadline: Duration,
    input_size: usize,
) -> ClassificationService {
    let env = ExperimentEnv {
        input_size,
        ..Default::default()
    };
    ClassificationService::new(
        shared_classifier(&env),
        ServiceConfig {
            overload,
            deadline,
            queue_capacity: 64,
            ..Default::default()
        },
    )
}

fn main() {
    let env = ExperimentEnv::default();
    let base = TrafficConfig {
        seed: 0x5EED,
        creatives: 128,
        ad_fraction: 0.4,
        zipf_s: 0.9,
        requests: 512,
        pattern: TrafficPattern::ClosedLoop,
        edge: 48,
    };

    // Capacity calibration once, on an unconstrained service.
    let calib = service(
        OverloadPolicy::Block,
        Duration::from_secs(600),
        env.input_size,
    );
    let capacity = calibrate_capacity_rps(&calib, &base).max(20.0);
    let shards = calib.shard_count();
    drop(calib);
    let deadline = Duration::from_secs_f64((16.0 / capacity).max(0.05));

    let scenarios: Vec<(&str, OverloadPolicy, TrafficConfig)> = vec![
        (
            "steady 0.5x",
            OverloadPolicy::Shed,
            TrafficConfig {
                pattern: TrafficPattern::Steady(capacity * 0.5),
                ..base
            },
        ),
        (
            "ramp 0.2x→2x",
            OverloadPolicy::Shed,
            TrafficConfig {
                pattern: TrafficPattern::Ramp(capacity * 0.2, capacity * 2.0),
                ..base
            },
        ),
        (
            "bursty 4x/50ms",
            OverloadPolicy::Shed,
            TrafficConfig {
                pattern: TrafficPattern::Bursty {
                    rps: capacity * 4.0,
                    period: Duration::from_millis(50),
                },
                ..base
            },
        ),
        (
            "hot keys zipf 1.2",
            OverloadPolicy::Shed,
            TrafficConfig {
                zipf_s: 1.2,
                creatives: 32,
                pattern: TrafficPattern::Steady(capacity * 0.8),
                ..base
            },
        ),
        (
            "overload 2x shed",
            OverloadPolicy::Shed,
            TrafficConfig {
                pattern: TrafficPattern::Steady(capacity * 2.0),
                zipf_s: -1.0,
                creatives: base.requests,
                ..base
            },
        ),
        (
            "overload 2x degrade",
            OverloadPolicy::Degrade,
            TrafficConfig {
                pattern: TrafficPattern::Steady(capacity * 2.0),
                zipf_s: -1.0,
                creatives: base.requests,
                ..base
            },
        ),
        (
            "overload 2x block",
            OverloadPolicy::Block,
            TrafficConfig {
                pattern: TrafficPattern::Steady(capacity * 2.0),
                zipf_s: -1.0,
                creatives: base.requests,
                ..base
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, overload, traffic) in scenarios {
        let svc = service(overload, deadline, env.input_size);
        let r = loadgen::run(&svc, &traffic);
        assert_eq!(r.lost, 0, "scenario '{name}' lost tickets");
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", r.achieved_rps),
            format!("{:?}", r.latency.p50),
            format!("{:?}", r.latency.p99),
            pct(r.service.dedup_rate()),
            pct(r.shed as f64 / r.submitted as f64),
            pct(r.service.degraded() as f64 / r.submitted as f64),
            r.service.stolen_batches().to_string(),
        ]);
    }
    println!("capacity ≈ {capacity:.0} req/s, deadline {deadline:?}, {shards} shards\n");
    print_table(
        "Serving scenarios — sharded deadline-aware service",
        &[
            "scenario", "req/s", "p50", "p99", "dedup", "shed", "degraded", "stolen",
        ],
        &rows,
    );
}
