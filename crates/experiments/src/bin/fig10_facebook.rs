//! Figure 10 / Section 5.3: first-party (Facebook) ad blocking.
//!
//! The paper browsed Facebook for 35 days: 354 ads vs 1,830 non-ads,
//! accuracy 92.0%, FP 68, FN 106, TP 248, TN 1,762, precision 0.784,
//! recall 0.7 — the right-column ads are easy, the in-feed sponsored
//! posts are hard, brand content causes FPs. We classify synthetic feed
//! sessions with the same placement mix.

use percival_experiments::harness::{shared_classifier, ExperimentEnv};
use percival_experiments::report::{compare, f3, pct, print_table};
use percival_util::{BinaryConfusion, Pcg32};
use percival_webgen::social::{generate_session, FeedConfig, FeedSlot};

fn main() {
    let env = ExperimentEnv::default();
    let classifier = shared_classifier(&env);

    let mut rng = Pcg32::seed_from_u64(0xFACE);
    let session = generate_session(
        &mut rng,
        FeedConfig {
            items: 2184,
            size: env.input_size,
            ..Default::default()
        },
    );

    let mut cm = BinaryConfusion::default();
    let mut by_slot: Vec<(FeedSlot, BinaryConfusion)> = vec![
        (FeedSlot::RightColumn, BinaryConfusion::default()),
        (FeedSlot::InFeedSponsored, BinaryConfusion::default()),
        (FeedSlot::OrganicPost, BinaryConfusion::default()),
        (FeedSlot::BrandPost, BinaryConfusion::default()),
    ];
    for item in &session {
        let predicted = classifier.classify(&item.bitmap).is_ad;
        cm.record(item.is_ad, predicted);
        for (slot, slot_cm) in &mut by_slot {
            if *slot == item.slot {
                slot_cm.record(item.is_ad, predicted);
            }
        }
    }

    print_table(
        "Figure 10 — Facebook ads and sponsored content",
        &["metric", "paper", "measured"],
        &[
            compare("ads", "354", &cm.positives().to_string()),
            compare("non-ads", "1,830", &cm.negatives().to_string()),
            compare("accuracy", "92.0%", &pct(cm.accuracy())),
            compare("FP", "68", &cm.fp.to_string()),
            compare("FN", "106", &cm.fn_.to_string()),
            compare("TP", "248", &cm.tp.to_string()),
            compare("TN", "1,762", &cm.tn.to_string()),
            compare("precision", "0.784", &f3(cm.precision())),
            compare("recall", "0.7", &f3(cm.recall())),
        ],
    );

    let slot_rows: Vec<Vec<String>> = by_slot
        .iter()
        .map(|(slot, c)| {
            let caught = if c.positives() > 0 {
                format!("{:.0}% of ads blocked", c.recall() * 100.0)
            } else {
                format!(
                    "{:.1}% falsely blocked",
                    100.0 * c.fp as f64 / c.negatives().max(1) as f64
                )
            };
            vec![format!("{slot:?}"), c.total().to_string(), caught]
        })
        .collect();
    print_table(
        "Per-placement error analysis",
        &["placement", "items", "outcome"],
        &slot_rows,
    );
    println!(
        "\nExpected shape: right-column ads nearly always caught; in-feed \
         sponsored posts drive the false negatives; brand posts drive the \
         false positives — the paper's exact error analysis."
    );
}
