//! Sections 6 & 7: deployment alternatives and the adversarial threat.
//!
//! Three claims from the discussion sections, measured:
//!
//! 1. PERCIVAL can *generate block lists* for traditional blockers
//!    (Section 6): crawl, classify, distill rules, verify coverage.
//! 2. Memoized/async classification trades first-sight blocking for
//!    near-zero steady-state latency (Sections 1.1 and 6).
//! 3. Gradient-based adversarial perturbations defeat the classifier
//!    (Section 7) — quantified as attack success rate vs epsilon.

use percival_core::Classifier;
use percival_crawler::blocklist::generate_blocklist;
use percival_experiments::harness::{results_dir, shared_classifier, ExperimentEnv};
use percival_experiments::report::print_table;
use percival_nn::adversarial::attack_success_rate;
use percival_util::Pcg32;
use percival_webgen::profile::{sample_image, DatasetProfile};
use percival_webgen::sites::{generate_corpus, CorpusConfig};
use percival_webgen::Script;

fn main() {
    let env = ExperimentEnv::default();
    let classifier = shared_classifier(&env);

    // 1. Block-list generation.
    let corpus = generate_corpus(CorpusConfig {
        n_sites: 16,
        pages_per_site: 2,
        seed: 0x6E9,
        ..Default::default()
    });
    let list = generate_blocklist(&corpus, &classifier, 3);
    let path = results_dir().join("generated_blocklist.txt");
    std::fs::write(&path, list.to_list_text()).expect("results writable");
    print_table(
        "Section 6 — block-list generation from PERCIVAL verdicts",
        &["metric", "value"],
        &[
            vec!["unique images crawled".into(), list.images_seen.to_string()],
            vec!["flagged as ads".into(), list.ads_flagged.to_string()],
            vec!["rules distilled".into(), list.rules.len().to_string()],
            vec!["list written to".into(), path.display().to_string()],
        ],
    );
    for rule in list.rules.iter().take(8) {
        println!("  {rule}");
    }

    // 2. Memoization steady state.
    let memo = percival_core::MemoizedClassifier::new(classifier.clone(), 1024);
    let mut rng = Pcg32::seed_from_u64(0x3E3);
    let samples: Vec<_> = (0..40)
        .map(|i| {
            sample_image(
                &mut rng,
                DatasetProfile::Alexa,
                Script::Latin,
                env.input_size,
                i % 2 == 0,
            )
        })
        .collect();
    let t0 = std::time::Instant::now();
    for s in &samples {
        memo.classify(&s.bitmap);
    }
    let cold = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = std::time::Instant::now();
    for s in &samples {
        memo.classify(&s.bitmap);
    }
    let warm = t1.elapsed().as_secs_f64() * 1e3;
    print_table(
        "Section 6 — memoized (async-mode) classification",
        &["pass", "total ms for 40 images"],
        &[
            vec!["cold (all CNN)".into(), format!("{cold:.1}")],
            vec!["warm (all cache hits)".into(), format!("{warm:.3}")],
        ],
    );

    // 3. Adversarial exposure (FGSM), on correctly-classified samples.
    let adv_samples: Vec<(percival_tensor::Tensor, usize)> = samples
        .iter()
        .map(|s| {
            (
                Classifier::preprocess(&s.bitmap, env.input_size),
                usize::from(s.is_ad),
            )
        })
        .collect();
    let mut rows = Vec::new();
    for eps in [0.01f32, 0.03, 0.06, 0.12] {
        let rate = attack_success_rate(classifier.model(), &adv_samples, eps);
        rows.push(vec![format!("{eps}"), format!("{:.0}%", rate * 100.0)]);
    }
    print_table(
        "Section 7 — FGSM attack success rate (L-inf budget, inputs in [-1,1])",
        &["epsilon", "flip rate"],
        &rows,
    );
    println!(
        "\nThe paper's conclusion stands: perceptual blocking raises the bar \
         (content must be visually distorted), but gradient attacks remain an \
         open problem; Section 6 floats client-side retraining as mitigation."
    );
}
