//! Figures 12/16/17 (qualitative): before/after blocking screenshots.
//!
//! Renders a synthetic page with and without the PERCIVAL hook and writes
//! both frame buffers to `results/` as PPM images — the analogue of the
//! paper's Facebook/search/regional-site screenshots with blanked ads.

use percival_core::PercivalHook;
use percival_crawler::adapters::store_from_corpus;
use percival_experiments::harness::{results_dir, shared_classifier, ExperimentEnv};
use percival_imgcodec::ppm::encode_ppm;
use percival_renderer::hook::NoopInterceptor;
use percival_renderer::net::AllowAll;
use percival_renderer::RenderPipeline;
use percival_webgen::sites::{generate_corpus, CorpusConfig};

fn main() {
    let env = ExperimentEnv::default();
    let classifier = shared_classifier(&env);
    let corpus = generate_corpus(CorpusConfig {
        n_sites: 4,
        pages_per_site: 1,
        seed: 0x5C12EE,
        ..Default::default()
    });
    let store = store_from_corpus(&corpus);
    let pipeline = RenderPipeline::default();

    for (i, page) in corpus.pages.iter().enumerate() {
        let before = pipeline
            .render(&store, page, &NoopInterceptor, &AllowAll, &[])
            .expect("page renders");
        let hook = PercivalHook::new(classifier.clone());
        let after = pipeline
            .render(&store, page, &hook, &AllowAll, &[])
            .expect("page renders");

        let before_path = results_dir().join(format!("fig12_page{i}_before.ppm"));
        let after_path = results_dir().join(format!("fig12_page{i}_after.ppm"));
        std::fs::write(&before_path, encode_ppm(&before.framebuffer)).unwrap();
        std::fs::write(&after_path, encode_ppm(&after.framebuffer)).unwrap();
        println!(
            "{page}: {} images, {} blocked -> {} / {}",
            after.stats.images_decoded,
            after.stats.images_blocked,
            before_path.display(),
            after_path.display()
        );
    }
    println!("\nBlocked creatives appear as blank regions in the *_after.ppm frames.");
}
