//! Flight-recorder demonstration: sampled traces over a cascade workload.
//!
//! Drives the full cascade + sharded service with `telem` sampling on,
//! then renders everything the observability layer exports: the per-stage
//! p50/p99 table (all stage kinds, including the cascade tiers and the
//! plan's per-op spans), a per-trace coverage check (how much of each
//! request's `EndToEnd` wall time the stage spans account for), the Chrome
//! trace-event dump (load it in `chrome://tracing` / Perfetto), and the
//! Prometheus exposition of the same run.
//!
//! Usage: `trace_report [sample_n]` — sample 1-in-N requests (default 16).

use percival_core::arch::percival_net_slim;
use percival_core::cascade::Cascade;
use percival_core::Classifier;
use percival_experiments::harness::results_dir;
use percival_nn::init::kaiming_init;
use percival_serve::loadgen::{self, TrafficConfig, TrafficPattern};
use percival_serve::{ClassificationService, ServiceConfig};
use percival_util::telem::{self, StageKind};
use percival_util::Pcg32;
use std::sync::Arc;
use std::time::Duration;

/// Fraction of a trace's `EndToEnd` wall time covered by the union of its
/// stage-span intervals (spans may overlap: the submitter's `Submit` span
/// races the batcher's `QueueWait` clock).
fn trace_coverage(spans: &[&telem::SpanEvent], total: u64) -> f64 {
    let mut intervals: Vec<(u64, u64)> = spans
        .iter()
        .filter(|s| s.kind != StageKind::EndToEnd)
        .map(|s| (s.start_ns, s.start_ns + s.dur_ns))
        .collect();
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut frontier = 0u64;
    for (lo, hi) in intervals {
        covered += hi.saturating_sub(lo.max(frontier));
        frontier = frontier.max(hi);
    }
    covered as f64 / total.max(1) as f64
}

fn main() {
    let sample_n: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("sample_n must be a positive integer"))
        .unwrap_or(16);
    telem::set_sampling(sample_n);
    telem::clear();

    // A randomly initialized slim net: the recorder measures where time
    // goes, not what the verdicts are, so training would only slow the
    // report down.
    let mut model = percival_net_slim(4);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
    let service = ClassificationService::new(
        Classifier::new(model, 64),
        ServiceConfig {
            deadline: Duration::from_secs(600),
            ..Default::default()
        },
    );
    let cascade = Arc::new(Cascade::synthetic());
    // Distinct creatives (round-robin), so sampled requests never land on
    // the memo cache: every CNN-residual trace carries the full
    // Submit (with its nested Preprocess resize) → QueueWait → BatchForm
    // → PlanOp → Publish chain.
    let traffic = TrafficConfig {
        seed: 0x5EED,
        creatives: 512,
        ad_fraction: 0.5,
        zipf_s: -1.0,
        requests: 512,
        pattern: TrafficPattern::ClosedLoop,
        edge: 64,
    };

    let report = loadgen::run_cascade(&service, &cascade, &traffic);
    telem::set_sampling(0);
    assert_eq!(report.lost, 0, "loadgen lost tickets");

    let spans = telem::drain();
    println!(
        "sampled 1-in-{sample_n}: {} requests -> {} spans\n",
        report.requests,
        spans.len()
    );
    print!("{}", telem::stage_table(&spans));

    // Per-trace coverage: group spans by trace, compare the interval union
    // of the stage spans against the closing EndToEnd.
    let mut by_trace: std::collections::HashMap<u64, Vec<&telem::SpanEvent>> =
        std::collections::HashMap::new();
    for s in &spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    // Full traces reached a flight queue; early traces resolved before one
    // (cascade tiers, memo cache) and are microsecond-scale, where constant
    // per-request overhead outside any span dominates the ratio.
    let (mut full, mut early): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
    for spans in by_trace.values() {
        let Some(e2e) = spans.iter().find(|s| s.kind == StageKind::EndToEnd) else {
            continue;
        };
        let cov = trace_coverage(spans, e2e.dur_ns);
        if spans.iter().any(|s| s.kind == StageKind::QueueWait) {
            full.push(cov);
        } else {
            early.push(cov);
        }
    }
    println!(
        "\ntraces closed: {} full-chain, {} early-resolved",
        full.len(),
        early.len()
    );
    for (name, mut covs) in [("full-chain", full), ("early", early)] {
        if covs.is_empty() {
            continue;
        }
        covs.sort_by(|a, b| a.total_cmp(b));
        let mean = covs.iter().sum::<f64>() / covs.len() as f64;
        println!(
            "  {name:>10} stage-span coverage of EndToEnd: mean {:.1}%, min {:.1}%",
            mean * 100.0,
            covs[0] * 100.0,
        );
    }

    let dir = results_dir();
    let trace_path = dir.join("trace_report.json");
    std::fs::write(&trace_path, telem::chrome_trace_json(&spans))
        .expect("results directory must be writable");
    let prom_path = dir.join("trace_report.prom");
    std::fs::write(&prom_path, report.service.prometheus(None))
        .expect("results directory must be writable");
    println!(
        "\nChrome trace (chrome://tracing): {}\nPrometheus exposition:          {}",
        trace_path.display(),
        prom_path.display()
    );
}
