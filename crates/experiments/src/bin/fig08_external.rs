//! Figure 8 / Section 5.1: generalization to an external dataset.
//!
//! The paper trains on its own crawl and tests on 5,024 images from the
//! Hussain et al. CVPR'17 ad dataset: accuracy 0.877, model size 1.9 MB,
//! average classification 11 ms, precision 0.815, recall 0.976, F1 0.888 —
//! high recall with a precision hit from ad-adjacent negatives. We test
//! the shared model on the distribution-shifted "external" profile.

use percival_core::arch::percival_net;
use percival_core::evaluate;
use percival_experiments::harness::{shared_classifier, ExperimentEnv};
use percival_experiments::report::{compare, f3, print_table};
use percival_util::Pcg32;
use percival_webgen::profile::{sample_image, DatasetProfile};
use percival_webgen::Script;
use std::time::Instant;

fn main() {
    let env = ExperimentEnv::default();
    let classifier = shared_classifier(&env);

    // External dataset: shifted generator profile, scaled-down count.
    let n = 1256usize; // paper: 5,024; 1/4 scale keeps CPU time sane
    let mut rng = Pcg32::seed_from_u64(0xE87E);
    let mut bitmaps = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let s = sample_image(
            &mut rng,
            DatasetProfile::External,
            Script::Latin,
            env.input_size,
            i % 2 == 0,
        );
        bitmaps.push(s.bitmap);
        labels.push(s.is_ad);
    }

    let cm = evaluate(&classifier, &bitmaps, &labels);

    // Per-image latency, measured one-at-a-time like the deployment.
    let timing_runs = 50usize;
    let start = Instant::now();
    for b in bitmaps.iter().take(timing_runs) {
        let _ = classifier.classify(b);
    }
    let avg_ms = start.elapsed().as_secs_f64() * 1e3 / timing_runs as f64;

    // Model size: the experiment model is the slim variant; the deployable
    // full-width network is the size artifact the paper reports.
    let deploy_size_mb = percival_net().size_bytes_f32() as f64 / (1024.0 * 1024.0);
    let experiment_size_mb = classifier.save_bytes().len() as f64 / (1024.0 * 1024.0);

    print_table(
        "Figure 8 — external (Hussain et al.-style) dataset",
        &["metric", "paper", "measured"],
        &[
            compare("images", "5,024", &n.to_string()),
            compare("accuracy", "0.877", &f3(cm.accuracy())),
            compare("precision", "0.815", &f3(cm.precision())),
            compare("recall", "0.976", &f3(cm.recall())),
            compare("F1", "0.888", &f3(cm.f1())),
            compare(
                "model size",
                "1.9 MB",
                &format!("{deploy_size_mb:.2} MB full / {experiment_size_mb:.2} MB slim"),
            ),
            compare(
                "avg classify time",
                "11 ms",
                &format!("{avg_ms:.1} ms (slim, CPU)"),
            ),
        ],
    );
    println!(
        "\nExpected shape: recall stays high while precision drops versus the \
         in-distribution Figure 7 result (ad-adjacent negatives cause FPs)."
    );
}
