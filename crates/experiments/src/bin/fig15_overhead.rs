//! Figure 15 / Section 5.7: median render-time overhead of PERCIVAL.
//!
//! The paper: Chromium +4.55% (178.23 ms median), Brave +19.07%
//! (281.85 ms) — note Brave's *relative* overhead is larger because
//! shields make the baseline faster. We compute the same median deltas
//! from the shared render-performance samples.

use percival_experiments::harness::ExperimentEnv;
use percival_experiments::renderperf::measure;
use percival_experiments::report::print_table;
use percival_util::stats::overhead;

fn main() {
    let env = ExperimentEnv::default();
    let data = measure(&env, 30, 4, false);

    let chromium = overhead(&data.samples[0], &data.samples[1]).expect("samples exist");
    let brave = overhead(&data.samples[2], &data.samples[3]).expect("samples exist");

    print_table(
        "Figure 15 — PERCIVAL render overhead (median)",
        &["baseline", "treatment", "paper", "measured"],
        &[
            vec![
                "Chromium".into(),
                "Chromium + PERCIVAL".into(),
                "4.55% (178.23 ms)".into(),
                format!("{:.2}% ({:.2} ms)", chromium.percent, chromium.absolute),
            ],
            vec![
                "Brave".into(),
                "Brave + PERCIVAL".into(),
                "19.07% (281.85 ms)".into(),
                format!("{:.2}% ({:.2} ms)", brave.percent, brave.absolute),
            ],
        ],
    );
    print_table(
        "Median render times (ms)",
        &["config", "median"],
        &[
            vec![
                "Chromium".into(),
                format!("{:.2}", chromium.baseline_median),
            ],
            vec![
                "Chromium+PERCIVAL".into(),
                format!("{:.2}", chromium.treatment_median),
            ],
            vec!["Brave".into(), format!("{:.2}", brave.baseline_median)],
            vec![
                "Brave+PERCIVAL".into(),
                format!("{:.2}", brave.treatment_median),
            ],
        ],
    );
    println!(
        "\nScale note: absolute numbers differ from the paper (software \
         rasterizer + synthetic pages vs Chromium on EC2); the reproduction \
         target is the shape — overhead is noticeable but the page still \
         renders, and Brave's relative overhead exceeds Chromium's because \
         its baseline is faster."
    );
}
