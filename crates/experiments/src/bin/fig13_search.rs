//! Figure 13 / Section 5.4: blocking Google-image-search results.
//!
//! The paper feeds the top-100 images of queries with varying "ad intent"
//! through PERCIVAL: "Advertisement" gets 96/100 blocked, "Obama" 12/100,
//! with commercial queries in between. We classify the synthetic search
//! mixtures for the same seven queries.

use percival_experiments::harness::{shared_classifier, ExperimentEnv};
use percival_experiments::report::print_table;
use percival_util::Pcg32;
use percival_webgen::search::{generate_results, FIGURE13_QUERIES};

fn main() {
    let env = ExperimentEnv::default();
    let classifier = shared_classifier(&env);

    // Paper's blocked counts per query for the comparison column.
    let paper: [(&str, &str); 7] = [
        ("Obama", "12"),
        ("Advertisement", "96"),
        ("Shoes", "56"),
        ("Pastry", "14"),
        ("Coffee", "23"),
        ("Detergent", "85"),
        ("iPhone", "76"),
    ];

    let mut rows = Vec::new();
    for q in FIGURE13_QUERIES {
        let mut rng = Pcg32::seed_from_u64(0x5EA2 ^ q.name.len() as u64);
        let results = generate_results(&mut rng, q, 100, env.input_size);
        let mut blocked = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for r in &results {
            let verdict = classifier.classify(&r.bitmap).is_ad;
            if verdict {
                blocked += 1;
                if !r.is_ad {
                    fp += 1;
                }
            } else if r.is_ad {
                fn_ += 1;
            }
        }
        let paper_blocked = paper
            .iter()
            .find(|(n, _)| *n == q.name)
            .map(|(_, b)| *b)
            .unwrap_or("-");
        rows.push(vec![
            q.name.to_string(),
            format!("{paper_blocked} / {blocked}"),
            format!(
                "{} / {}",
                100 - paper_blocked.parse::<usize>().unwrap_or(0),
                100 - blocked
            ),
            fp.to_string(),
            fn_.to_string(),
        ]);
    }
    print_table(
        "Figure 13 — image-search blocking (paper / measured)",
        &["query", "blocked", "rendered", "FP", "FN"],
        &rows,
    );
    println!(
        "\nExpected shape: high-ad-intent queries (Advertisement, Detergent, \
         iPhone) mostly blocked; low-intent queries (Obama, Pastry) mostly \
         rendered."
    );
}
