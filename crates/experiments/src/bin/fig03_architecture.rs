//! Figure 3 / Section 2.3: architecture and model-size comparison.
//!
//! Prints the original-SqueezeNet-vs-PERCIVAL-fork structure, real
//! parameter/size/FLOP numbers for the in-repo networks, the published
//! baselines, int8 quantization, and the headline compression factor.

use percival_core::arch::{original_squeezenet, percival_net, INPUT_CHANNELS, PAPER_INPUT_SIZE};
use percival_core::baselines::{compression_factor, f32_size_bytes, size_mb, BASELINES};
use percival_experiments::report::print_table;
use percival_nn::quant::quantize;
use percival_tensor::Shape;

fn main() {
    let fork = percival_net();
    let orig = original_squeezenet();
    let input = Shape::new(1, INPUT_CHANNELS, PAPER_INPUT_SIZE, PAPER_INPUT_SIZE);

    let mut rows = Vec::new();
    for b in BASELINES {
        rows.push(vec![
            b.name.to_string(),
            format!("{:.1}M", b.params as f64 / 1e6),
            format!("{:.1} MB", size_mb(b.params)),
            b.used_by.to_string(),
        ]);
    }
    rows.push(vec![
        "SqueezeNet v1.1 (in-repo)".to_string(),
        format!("{:.2}M", orig.param_count() as f64 / 1e6),
        format!("{:.2} MB", orig.size_bytes_f32() as f64 / (1024.0 * 1024.0)),
        "starting point".to_string(),
    ]);
    let fork_bytes = fork.size_bytes_f32();
    rows.push(vec![
        "PERCIVAL fork (in-repo)".to_string(),
        format!("{:.2}M", fork.param_count() as f64 / 1e6),
        format!("{:.2} MB", fork_bytes as f64 / (1024.0 * 1024.0)),
        "this work".to_string(),
    ]);
    let q = quantize(&fork);
    rows.push(vec![
        "PERCIVAL fork, int8".to_string(),
        format!("{:.2}M", fork.param_count() as f64 / 1e6),
        format!("{:.2} MB", q.size_bytes() as f64 / (1024.0 * 1024.0)),
        "deployment extension".to_string(),
    ]);
    print_table(
        "Figure 3 — model inventory",
        &["model", "params", "size", "role"],
        &rows,
    );

    print_table(
        "Figure 3 — fork vs original (224x224x4 input)",
        &["metric", "SqueezeNet", "PERCIVAL fork"],
        &[
            vec!["fire modules".to_string(), "8".to_string(), "6".to_string()],
            vec![
                "forward MFLOPs".to_string(),
                format!("{:.0}", orig.flops(input) as f64 / 1e6),
                format!("{:.0}", fork.flops(input) as f64 / 1e6),
            ],
            vec![
                "parameters".to_string(),
                orig.param_count().to_string(),
                fork.param_count().to_string(),
            ],
        ],
    );

    let yolo = f32_size_bytes(BASELINES[0].params);
    println!(
        "\nCompression vs Sentinel-class model: {:.0}x (paper: ~74x, \"<2 MB\" model: {})",
        compression_factor(yolo, fork_bytes as u64),
        if fork_bytes < 2 * 1024 * 1024 {
            "yes"
        } else {
            "NO"
        },
    );
}
