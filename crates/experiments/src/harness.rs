//! The shared experiment environment.
//!
//! All figure binaries evaluate the *same* trained PERCIVAL model, exactly
//! as the paper evaluates one trained network across its experiments. The
//! model is trained once on an instrumented crawl of the standard corpus
//! (Section 4.4.2's methodology) and cached on disk, so the first `fig*`
//! run pays the training cost and the rest start instantly.

use percival_core::{train, Classifier, TrainConfig};
use percival_crawler::instrumented::{crawl_instrumented, LabelSource};
use percival_nn::StepLr;
use percival_util::Pcg32;
use percival_webgen::profile::{sample_image, DatasetProfile};
use percival_webgen::sites::{generate_corpus, CorpusConfig};
use percival_webgen::Script;
use std::path::PathBuf;

/// Experiment-wide constants.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentEnv {
    /// Classifier input edge (paper: 224; experiments: 64 — see DESIGN.md
    /// training-scale note).
    pub input_size: usize,
    /// Slim-network width divisor.
    pub width_divisor: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentEnv {
    fn default() -> Self {
        ExperimentEnv {
            input_size: 64,
            width_divisor: 4,
            seed: 0x9E2C_17A1,
        }
    }
}

/// The results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("results directory must be writable");
    dir
}

fn model_cache_path(env: &ExperimentEnv) -> PathBuf {
    results_dir().join(format!(
        "percival_w{}_s{}.pcvl",
        env.width_divisor, env.input_size
    ))
}

/// Builds the standard training corpus and crawls it with the instrumented
/// browser (oracle labels), augmented with direct generator samples.
pub fn training_data(env: &ExperimentEnv) -> (Vec<percival_imgcodec::Bitmap>, Vec<bool>) {
    let corpus = generate_corpus(CorpusConfig {
        n_sites: 24,
        pages_per_site: 3,
        seed: env.seed,
        ..Default::default()
    });
    let mut dataset = crawl_instrumented(&corpus, LabelSource::Oracle);

    // Augment with generator samples so both classes are plentiful.
    let mut rng = Pcg32::seed_from_u64(env.seed ^ 0xA06);
    for i in 0..400 {
        let s = sample_image(
            &mut rng,
            DatasetProfile::Alexa,
            Script::Latin,
            env.input_size,
            i % 2 == 0,
        );
        dataset.push(s.bitmap, s.is_ad, s.style);
    }
    dataset.dedup();
    dataset.balance(&mut rng);
    dataset.as_training_views()
}

/// Returns the shared trained classifier, training and caching it on the
/// first call.
pub fn shared_classifier(env: &ExperimentEnv) -> Classifier {
    let path = model_cache_path(env);
    let mut classifier = {
        // Construct the architecture; weights come from cache or training.
        let mut model = percival_core::arch::percival_net_slim(env.width_divisor);
        percival_nn::init::kaiming_init(&mut model, &mut Pcg32::seed_from_u64(env.seed));
        Classifier::new(model, env.input_size)
    };

    if let Ok(bytes) = std::fs::read(&path) {
        if classifier.load_bytes(&bytes).is_ok() {
            eprintln!("[harness] loaded cached model from {}", path.display());
            return classifier;
        }
        eprintln!("[harness] cached model invalid; retraining");
    }

    eprintln!("[harness] training the shared PERCIVAL model (one-time)...");
    let (bitmaps, labels) = training_data(env);
    eprintln!("[harness] training set: {} images", bitmaps.len());
    let cfg = TrainConfig {
        input_size: env.input_size,
        width_divisor: env.width_divisor,
        epochs: 10,
        batch_size: 24,
        momentum: 0.9,
        schedule: StepLr {
            base: 0.02,
            gamma: 0.1,
            every: 30,
        },
        seed: env.seed,
        pretrained: None,
    };
    let trained = train(&bitmaps, &labels, &cfg);
    for e in &trained.history {
        eprintln!(
            "[harness]   epoch {:>2}: loss {:.4}  train-acc {:.3}  lr {}",
            e.epoch, e.loss, e.accuracy, e.lr
        );
    }
    let bytes = trained.classifier.save_bytes();
    if let Err(e) = std::fs::write(&path, &bytes) {
        eprintln!("[harness] warning: could not cache model: {e}");
    } else {
        eprintln!(
            "[harness] cached {} KiB model at {}",
            bytes.len() / 1024,
            path.display()
        );
    }
    trained.classifier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_valid_for_the_architecture() {
        let env = ExperimentEnv::default();
        let model = percival_core::arch::percival_net_slim(env.width_divisor);
        assert!(percival_core::arch::accepts_input(&model, env.input_size));
    }

    #[test]
    fn training_data_is_balanced_and_nonempty() {
        // A miniature env keeps this test fast.
        let env = ExperimentEnv {
            input_size: 32,
            width_divisor: 4,
            seed: 42,
        };
        let (bitmaps, labels) = training_data(&env);
        assert!(bitmaps.len() >= 100, "got {}", bitmaps.len());
        let ads = labels.iter().filter(|&&a| a).count();
        assert_eq!(ads * 2, labels.len(), "balanced");
    }
}
