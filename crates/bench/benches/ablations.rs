//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - **memoization** (sync miss vs hit — the async deployment's win);
//! - **downsampling schedule** (PERCIVAL's pruned fork vs the original
//!   SqueezeNet: the classification-time motivation of Section 4.2);
//! - **hook placement** (pre-decode URL filtering vs post-decode pixels —
//!   the cost side of the Section 2.2 trade-off);
//! - **quantization** (int8 round-trip cost).

use criterion::{criterion_group, criterion_main, Criterion};
use percival_core::arch::{original_squeezenet, percival_net_slim};
use percival_core::{Classifier, MemoizedClassifier};
use percival_filterlist::easylist::synthetic_engine;
use percival_filterlist::{RequestInfo, ResourceType, Url};
use percival_imgcodec::Bitmap;
use percival_nn::init::kaiming_init;
use percival_nn::quant::quantize;
use percival_nn::Sequential;
use percival_tensor::{Shape, Tensor};
use percival_util::Pcg32;
use std::hint::black_box;
use std::time::Duration;

fn init(mut m: Sequential, seed: u64) -> Sequential {
    kaiming_init(&mut m, &mut Pcg32::seed_from_u64(seed));
    m
}

fn bench_ablations(c: &mut Criterion) {
    // Memoization: hit vs miss.
    let classifier = Classifier::new(init(percival_net_slim(4), 1), 64);
    let memo = MemoizedClassifier::new(classifier.clone(), 128);
    let img = Bitmap::new(80, 60, [120, 80, 200, 255]);
    let _warm = memo.classify(&img);
    let mut g = c.benchmark_group("memoization");
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("hit", |b| {
        b.iter(|| black_box(memo.classify(black_box(&img))))
    });
    g.bench_function("miss_full_cnn", |b| {
        b.iter(|| black_box(classifier.classify(black_box(&img))))
    });
    g.finish();

    // Downsampling schedule: pruned fork vs original SqueezeNet, same
    // input, both at width/4 scale comparison via full-width at 96px.
    let fork = init(percival_net_slim(2), 2);
    let orig = init(original_squeezenet(), 3);
    let fork_in = Tensor::filled(Shape::new(1, 4, 96, 96), 0.3);
    let mut g2 = c.benchmark_group("downsampling_schedule_96px");
    g2.sample_size(10);
    g2.measurement_time(Duration::from_secs(4));
    g2.bench_function("percival_fork_w2", |b| {
        b.iter(|| black_box(fork.forward(black_box(&fork_in))))
    });
    g2.bench_function("original_squeezenet_w1", |b| {
        b.iter(|| black_box(orig.forward(black_box(&fork_in))))
    });
    g2.finish();

    // Hook placement: URL-only filtering vs pixel classification.
    let engine = synthetic_engine();
    let url = Url::parse("http://adnet-alpha.web/serve/banner_728x90_5.png").unwrap();
    let src = Url::parse("http://news0.web/").unwrap();
    let mut g3 = c.benchmark_group("hook_placement");
    g3.measurement_time(Duration::from_secs(3));
    g3.bench_function("pre_decode_url_filter", |b| {
        b.iter(|| {
            let req = RequestInfo {
                url: &url,
                source: &src,
                resource_type: ResourceType::Image,
            };
            black_box(engine.should_block(black_box(&req)))
        })
    });
    g3.bench_function("post_decode_cnn", |b| {
        b.iter(|| black_box(classifier.classify(black_box(&img))))
    });
    g3.finish();

    // Quantization round-trip (the model-update path on device).
    let model = init(percival_net_slim(4), 4);
    let mut g4 = c.benchmark_group("quantization");
    g4.measurement_time(Duration::from_secs(3));
    g4.bench_function("int8_quantize", |b| {
        b.iter(|| black_box(quantize(black_box(&model))))
    });
    let q = quantize(&model);
    g4.bench_function("int8_dequantize", |b| {
        b.iter(|| {
            let mut m = model.clone();
            q.dequantize_into(&mut m).expect("structure matches");
            black_box(m)
        })
    });
    g4.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
