//! Classification-latency benchmarks (the paper's "detects ad images in
//! 11 ms" claim, Figure 8) at several input scales and widths.

use criterion::{criterion_group, criterion_main, Criterion};
use percival_core::arch::{percival_net, percival_net_slim};
use percival_core::Classifier;
use percival_imgcodec::Bitmap;
use percival_nn::init::kaiming_init;
use percival_util::Pcg32;
use std::hint::black_box;
use std::time::Duration;

fn noisy_bitmap(edge: usize, seed: u64) -> Bitmap {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut b = Bitmap::new(edge, edge, [0, 0, 0, 255]);
    for y in 0..edge {
        for x in 0..edge {
            b.set(
                x,
                y,
                [
                    rng.next_below(256) as u8,
                    rng.next_below(256) as u8,
                    rng.next_below(256) as u8,
                    255,
                ],
            );
        }
    }
    b
}

fn classifier(divisor: usize, input: usize) -> Classifier {
    let mut model = percival_net_slim(divisor);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(1));
    Classifier::new(model, input)
}

fn bench_inference(c: &mut Criterion) {
    let img = noisy_bitmap(120, 2);

    let mut g = c.benchmark_group("classify");
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);
    let slim64 = classifier(4, 64);
    g.bench_function("slim4_64px", |b| b.iter(|| black_box(slim64.classify(black_box(&img)))));
    let slim32 = classifier(4, 32);
    g.bench_function("slim4_32px", |b| b.iter(|| black_box(slim32.classify(black_box(&img)))));
    g.finish();

    // The paper-geometry network (full width, 224x224x4) — the Figure 8
    // "11 ms" data point, here on a software GEMM.
    let mut full = percival_net();
    kaiming_init(&mut full, &mut Pcg32::seed_from_u64(3));
    let full224 = Classifier::new(full, 224);
    let mut g2 = c.benchmark_group("classify_paper_geometry");
    g2.sample_size(10);
    g2.measurement_time(Duration::from_secs(5));
    g2.bench_function("full_224px", |b| b.iter(|| black_box(full224.classify(black_box(&img)))));
    g2.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
