//! Classification-latency benchmarks (the paper's "detects ad images in
//! 11 ms" claim, Figure 8) at several input scales and widths, plus the
//! batched-engine comparisons: scalar vs tiled vs explicit-SIMD vs int8
//! GEMM, and batch=1 vs batch=8/32 throughput through the micro-batching
//! path.
//!
//! Run with `cargo bench -p percival_bench --bench inference`. Besides the
//! usual console report, this bench writes a `BENCH_inference.json`
//! snapshot to the repository root so speedups can be tracked across PRs
//! (`cargo bench ... -- --test` smoke-runs everything without touching the
//! snapshot).

use criterion::Criterion;
use percival_bench::snapshot;
use percival_core::arch::{percival_net, percival_net_slim};
use percival_core::{Classifier, EngineConfig, InferenceEngine, PercivalHook, Precision};
use percival_imgcodec::Bitmap;
use percival_nn::init::kaiming_init;
use percival_nn::{ExecPlan, QuantizedSequential};
use percival_renderer::{ImageInterceptor, ImageMeta};
use percival_serve::{ClassificationService, ServiceConfig};
use percival_tensor::activation::relu_inplace;
use percival_tensor::gemm::{
    gemm_acc, gemm_acc_scalar, gemm_acc_ws_ep, set_gemm_kernel, GemmKernel,
};
use percival_tensor::gemm_i8::requantize_into;
use percival_tensor::{
    gemm_i8, gemm_i8_fused, gemm_i8_fused_prepacked, gemm_prepacked_acc_ep, quantize_symmetric,
    set_i8_tier_override, simd_available, vnni_available, EpilogueF32, I8Tier, PackedGemmF32,
    PackedGemmI8, RequantEpilogue, Shape, Tensor, Workspace,
};
use percival_util::telem;
use percival_util::Pcg32;
use std::hint::black_box;
use std::time::Duration;

fn noisy_bitmap(edge: usize, seed: u64) -> Bitmap {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut b = Bitmap::new(edge, edge, [0, 0, 0, 255]);
    for y in 0..edge {
        for x in 0..edge {
            b.set(
                x,
                y,
                [
                    rng.next_below(256) as u8,
                    rng.next_below(256) as u8,
                    rng.next_below(256) as u8,
                    255,
                ],
            );
        }
    }
    b
}

fn classifier(divisor: usize, input: usize) -> Classifier {
    let mut model = percival_net_slim(divisor);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(1));
    Classifier::new(model, input)
}

fn rand_vec(seed: u64, len: usize) -> Vec<f32> {
    let mut rng = Pcg32::seed_from_u64(seed);
    (0..len).map(|_| rng.range_f32(-1.0, 1.0)).collect()
}

/// Scalar (seed baseline) vs cache-blocked vs explicit-SIMD vs int8 GEMM
/// on convolution-shaped problems: (oc, ic*kh*kw, oh*ow) of PERCIVAL
/// layers at 224px input.
fn bench_gemm(c: &mut Criterion) {
    let cases = [
        ("conv1_224px", 64usize, 36usize, 12544usize),
        ("fire_expand3", 128, 288, 784),
        ("square_256", 256, 256, 256),
    ];
    let mut g = c.benchmark_group("gemm");
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    for (name, m, k, n) in cases {
        let a = rand_vec(1, m * k);
        let b = rand_vec(2, k * n);
        let mut out = vec![0.0f32; m * n];
        g.bench_function(&format!("scalar/{name}"), |bch| {
            bch.iter(|| gemm_acc_scalar(black_box(&a), black_box(&b), &mut out, m, k, n))
        });
        set_gemm_kernel(GemmKernel::Tiled);
        g.bench_function(&format!("tiled/{name}"), |bch| {
            bch.iter(|| gemm_acc(black_box(&a), black_box(&b), &mut out, m, k, n))
        });
        set_gemm_kernel(GemmKernel::Simd);
        g.bench_function(&format!("simd/{name}"), |bch| {
            bch.iter(|| gemm_acc(black_box(&a), black_box(&b), &mut out, m, k, n))
        });
        // The quantized inner product (same shapes, i8 operands, i32
        // accumulation — the work a QuantizedSequential convolution runs).
        // The auto row runs whatever tier the dispatcher picks for this
        // host; the per-tier rows pin the kernel so the VNNI-vs-AVX2 gain
        // is measured directly (each row only emitted when the host can
        // actually run that tier).
        set_gemm_kernel(GemmKernel::Simd);
        let mut aq = vec![0i8; m * k];
        let mut bq = vec![0i8; k * n];
        quantize_symmetric(&a, &mut aq);
        quantize_symmetric(&b, &mut bq);
        let mut acc = vec![0i32; m * n];
        let mut ws = Workspace::new();
        g.bench_function(&format!("int8/{name}"), |bch| {
            bch.iter(|| gemm_i8(black_box(&aq), black_box(&bq), &mut acc, m, k, n, &mut ws))
        });
        let mut tiers = vec![("int8_portable", I8Tier::Portable)];
        if simd_available() {
            tiers.push(("int8_avx2", I8Tier::Avx2));
        }
        if vnni_available() {
            tiers.push(("int8_vnni", I8Tier::Vnni));
        }
        for (tier_name, tier) in tiers {
            set_i8_tier_override(Some(tier));
            g.bench_function(&format!("{tier_name}/{name}"), |bch| {
                bch.iter(|| gemm_i8(black_box(&aq), black_box(&bq), &mut acc, m, k, n, &mut ws))
            });
        }
        set_i8_tier_override(None);
        set_gemm_kernel(GemmKernel::Tiled);
    }
    g.finish();
}

/// Compile-time weight prepacking vs per-call packing, at the GEMM level
/// (conv1's big panel-bound shape and the crossover shape sitting near the
/// skip-packing threshold — the row pair the `TILING_THRESHOLD` re-tune is
/// documented against) and at the plan level (the full-224 int8 pass with
/// empty arenas — the "before" row `prepack_full224_speedup` divides by
/// the prepacked `fusion/int8_fused_full224`).
fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack");
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    set_gemm_kernel(GemmKernel::Simd);
    for (name, m, k, n) in [
        ("conv1_224px", 64usize, 36usize, 12544usize),
        ("crossover_24x36x225", 24, 36, 225),
    ] {
        let a = rand_vec(31, m * k);
        let b = rand_vec(32, k * n);
        let mut out = vec![0.0f32; m * n];
        let mut ws = Workspace::new();
        g.bench_function(&format!("{name}/f32_repacked"), |bch| {
            bch.iter(|| {
                out.fill(0.0);
                gemm_acc_ws_ep(
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    m,
                    k,
                    n,
                    &mut ws,
                    EpilogueF32::NONE,
                );
            })
        });
        let pw = PackedGemmF32::pack(&a, m, k);
        g.bench_function(&format!("{name}/f32_prepacked"), |bch| {
            bch.iter(|| {
                out.fill(0.0);
                gemm_prepacked_acc_ep(
                    black_box(&a),
                    &pw,
                    black_box(&b),
                    &mut out,
                    n,
                    &mut ws,
                    EpilogueF32::NONE,
                );
            })
        });

        let mut aq = vec![0i8; m * k];
        let mut bq = vec![0i8; k * n];
        let w_scale = quantize_symmetric(&a, &mut aq);
        let x_scale = quantize_symmetric(&b, &mut bq);
        let bias = vec![0.1f32; m];
        let scales = [w_scale];
        let ep = RequantEpilogue {
            scale_x: x_scale,
            weight_scales: &scales,
            bias: &bias,
            relu: true,
            track_max: false,
        };
        g.bench_function(&format!("{name}/int8_repacked"), |bch| {
            bch.iter(|| {
                black_box(gemm_i8_fused(
                    black_box(&aq),
                    black_box(&bq),
                    &mut out,
                    m,
                    k,
                    n,
                    &mut ws,
                    &ep,
                ))
            })
        });
        let pq = PackedGemmI8::pack(&aq, m, k);
        g.bench_function(&format!("{name}/int8_prepacked"), |bch| {
            bch.iter(|| {
                black_box(gemm_i8_fused_prepacked(
                    &pq,
                    black_box(&bq),
                    &mut out,
                    n,
                    &mut ws,
                    &ep,
                ))
            })
        });
    }

    // Plan level: the fused full-224 int8 pass forced onto per-call weight
    // packing (empty arenas). Its prepacked counterpart is
    // `fusion/int8_fused_full224`.
    let mut model = percival_net();
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(3));
    let q = QuantizedSequential::from_model(&model);
    let unpacked = ExecPlan::compile_quantized_unpacked(&q);
    let input = Classifier::preprocess(&noisy_bitmap(224, 5), 224);
    let (shape, data) = (input.shape(), input.as_slice());
    let mut ws = Workspace::new();
    g.measurement_time(Duration::from_secs(5));
    g.bench_function("int8_full224_repacked", |b| {
        b.iter(|| black_box(unpacked.run_i8(&q, shape, black_box(data), &mut ws)))
    });
    set_gemm_kernel(GemmKernel::Tiled);
    g.finish();
}

/// Plan-level pipelining vs the sequential reference at paper geometry, on
/// both tiers. On a one-thread pool (single-core CI) the pipelined rows
/// collapse onto the sequential path, so these double as a no-regression
/// guard for the pipelining plumbing itself.
fn bench_pipeline(c: &mut Criterion) {
    let mut model = percival_net();
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(3));
    let q = QuantizedSequential::from_model(&model);
    let mut plan = ExecPlan::compile(&model);
    plan.attach_quantized(&q);
    let input = Classifier::preprocess(&noisy_bitmap(224, 5), 224);
    let (shape, data) = (input.shape(), input.as_slice());

    let mut g = c.benchmark_group("pipeline");
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);
    set_gemm_kernel(GemmKernel::Simd);
    let mut ws = Workspace::new();
    g.bench_function("f32_seq_full224", |b| {
        b.iter(|| black_box(plan.run_f32_sequential(&model, shape, black_box(data), &mut ws)))
    });
    g.bench_function("f32_pipelined_full224", |b| {
        b.iter(|| black_box(plan.run_f32(&model, shape, black_box(data), &mut ws)))
    });
    g.bench_function("int8_seq_full224", |b| {
        b.iter(|| black_box(plan.run_i8_sequential(&q, shape, black_box(data), &mut ws)))
    });
    g.bench_function("int8_pipelined_full224", |b| {
        b.iter(|| black_box(plan.run_i8(&q, shape, black_box(data), &mut ws)))
    });
    set_gemm_kernel(GemmKernel::Tiled);
    g.finish();
}

/// The execution-plan fusion comparison: the fused plan (activation /
/// requantize epilogues, quantize-during-packing) against the unfused
/// reference plan (standalone sweeps — the PR 4 execution), at the paper's
/// full 224px geometry on both precision tiers, plus GEMM-level
/// epilogue-vs-sweep microbenches isolating the fused traversals.
fn bench_fusion(c: &mut Criterion) {
    let mut model = percival_net();
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(3));
    let q = QuantizedSequential::from_model(&model);
    let mut fused = ExecPlan::compile(&model);
    fused.attach_quantized(&q);
    let unfused = ExecPlan::compile_unfused(&model);
    let input = Classifier::preprocess(&noisy_bitmap(224, 5), 224);
    let (shape, data) = (input.shape(), input.as_slice());

    let mut g = c.benchmark_group("fusion");
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);
    set_gemm_kernel(GemmKernel::Simd);
    let mut ws = Workspace::new();
    g.bench_function("f32_fused_full224", |b| {
        b.iter(|| black_box(fused.run_f32(&model, shape, black_box(data), &mut ws)))
    });
    g.bench_function("f32_unfused_full224", |b| {
        b.iter(|| black_box(unfused.run_f32(&model, shape, black_box(data), &mut ws)))
    });
    g.bench_function("int8_fused_full224", |b| {
        b.iter(|| black_box(fused.run_i8(&q, shape, black_box(data), &mut ws)))
    });
    g.bench_function("int8_unfused_full224", |b| {
        b.iter(|| black_box(unfused.run_i8(&q, shape, black_box(data), &mut ws)))
    });

    // GEMM-level epilogue vs sweep on a conv-shaped problem (the first
    // 224px layer's GEMM): identical arithmetic, one traversal fewer.
    let (m, k, n) = (64usize, 36usize, 12544usize);
    let a = rand_vec(21, m * k);
    let b = rand_vec(22, k * n);
    let mut out = vec![0.0f32; m * n];
    g.bench_function("f32_epilogue_relu", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            gemm_acc_ws_ep(
                black_box(&a),
                black_box(&b),
                &mut out,
                m,
                k,
                n,
                &mut ws,
                EpilogueF32::RELU,
            );
        })
    });
    g.bench_function("f32_sweep_relu", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            gemm_acc_ws_ep(
                black_box(&a),
                black_box(&b),
                &mut out,
                m,
                k,
                n,
                &mut ws,
                EpilogueF32::NONE,
            );
            relu_inplace(&mut out);
        })
    });
    let mut aq = vec![0i8; m * k];
    let mut bq = vec![0i8; k * n];
    let wq_scale = quantize_symmetric(&a, &mut aq);
    let xq_scale = quantize_symmetric(&b, &mut bq);
    let bias = vec![0.1f32; m];
    let scales = [wq_scale];
    let ep = RequantEpilogue {
        scale_x: xq_scale,
        weight_scales: &scales,
        bias: &bias,
        relu: true,
        track_max: true,
    };
    let mut acc = vec![0i32; m * n];
    g.bench_function("int8_epilogue_requant", |bch| {
        bch.iter(|| {
            black_box(gemm_i8_fused(
                black_box(&aq),
                black_box(&bq),
                &mut out,
                m,
                k,
                n,
                &mut ws,
                &ep,
            ))
        })
    });
    g.bench_function("int8_sweep_requant", |bch| {
        bch.iter(|| {
            gemm_i8(black_box(&aq), black_box(&bq), &mut acc, m, k, n, &mut ws);
            requantize_into(&acc, wq_scale * xq_scale, &bias, n, &mut out);
            relu_inplace(&mut out);
        })
    });
    set_gemm_kernel(GemmKernel::Tiled);
    g.finish();
}

/// Batch=1 vs batch=8/32 through the batched forward path, on both the
/// tiled kernel and the seed's scalar kernel. Per-iteration time divided by
/// batch size gives per-image throughput; `tiled/n8` against
/// `seed_scalar/n1` is the engine-vs-seed acceptance comparison.
fn bench_batching(c: &mut Criterion) {
    let input = 64usize;
    let cls = classifier(4, input);
    let mut g = c.benchmark_group("batch");
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for (kernel_name, kernel) in [
        ("tiled", GemmKernel::Tiled),
        ("simd", GemmKernel::Simd),
        ("seed_scalar", GemmKernel::Scalar),
    ] {
        set_gemm_kernel(kernel);
        for batch in [1usize, 8, 32] {
            let shape = Shape::new(batch, 4, input, input);
            let mut rng = Pcg32::seed_from_u64(7);
            let tensor = Tensor::from_vec(
                shape,
                (0..shape.count())
                    .map(|_| rng.range_f32(-1.0, 1.0))
                    .collect(),
            );
            let mut ws = Workspace::new();
            g.bench_function(&format!("classify_tensor/{kernel_name}/n{batch}"), |bch| {
                bch.iter(|| black_box(cls.classify_tensor_with(black_box(&tensor), &mut ws)))
            });
        }
    }
    set_gemm_kernel(GemmKernel::Tiled);
    g.finish();
}

/// The engine's dedup fast paths: a memo-hit submission (the common case
/// once an ad network's creatives are cached) never touches the queue, so
/// its latency is the floor every served request pays. Prints the engine's
/// counter snapshot at the end — the plain-data [`EngineConfig`]-level view
/// the serving layer consumes.
fn bench_engine_hit_path(c: &mut Criterion) {
    let eng = InferenceEngine::new(classifier(4, 32), EngineConfig::default());
    let img = noisy_bitmap(64, 11);
    eng.submit_wait(&img); // prime the cache
    let mut g = c.benchmark_group("engine");
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    g.bench_function("submit_memo_hit", |b| {
        b.iter(|| black_box(eng.submit_wait(black_box(&img))))
    });
    g.finish();
    println!("engine stats: {}", eng.stats().snapshot());
}

/// Flight-recorder cost on an identical engine-submit workload: the hook's
/// memo-hit submission path (the per-request fast path every served
/// creative pays once its ad network's assets are cached) with tracing
/// disabled vs sampled 1-in-16 — the `PERCIVAL_TRACE=off` row is the
/// compile-out-free fast path's pin — plus the cost of rendering the
/// Prometheus exposition from a live multi-shard service report.
fn bench_telem(c: &mut Criterion) {
    let hook = PercivalHook::new(classifier(4, 32));
    let mut img = noisy_bitmap(64, 11);
    let meta = ImageMeta::basic("https://ads.example/creative.png", 64, 64, 0);
    hook.inspect(&mut img, &meta); // prime the verdict cache

    let mut g = c.benchmark_group("telem");
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    telem::set_sampling(0);
    g.bench_function("overhead_off", |b| {
        b.iter(|| black_box(hook.inspect(black_box(&mut img), &meta)))
    });
    telem::set_sampling(16);
    telem::clear();
    g.bench_function("overhead_sampled_16", |b| {
        b.iter(|| black_box(hook.inspect(black_box(&mut img), &meta)))
    });
    telem::set_sampling(0);
    telem::clear();

    // Exposition render over a report with live counters in every family.
    let svc = ClassificationService::new(classifier(4, 32), ServiceConfig::default());
    for seed in 0..8 {
        svc.submit(&noisy_bitmap(64, 20 + seed));
    }
    svc.flush();
    let report = svc.report();
    g.bench_function("exposition_render", |b| {
        b.iter(|| black_box(report.prometheus(None)))
    });
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let img = noisy_bitmap(120, 2);

    let mut g = c.benchmark_group("classify");
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);
    let slim64 = classifier(4, 64);
    g.bench_function("slim4_64px", |b| {
        b.iter(|| black_box(slim64.classify(black_box(&img))))
    });
    let slim32 = classifier(4, 32);
    g.bench_function("slim4_32px", |b| {
        b.iter(|| black_box(slim32.classify(black_box(&img))))
    });
    g.finish();

    // The paper-geometry network (full width, 224x224x4) — the Figure 8
    // "11 ms" data point, here on a software GEMM — across the three
    // execution paths: portable tiled f32, explicit-SIMD f32 and int8.
    let mut full = percival_net();
    kaiming_init(&mut full, &mut Pcg32::seed_from_u64(3));
    let full224 = Classifier::new(full, 224);
    let full224_int8 = full224.clone().with_precision(Precision::Int8);
    let mut g2 = c.benchmark_group("classify_paper_geometry");
    g2.sample_size(10);
    g2.measurement_time(Duration::from_secs(5));
    set_gemm_kernel(GemmKernel::Tiled);
    g2.bench_function("full_224px", |b| {
        b.iter(|| black_box(full224.classify(black_box(&img))))
    });
    set_gemm_kernel(GemmKernel::Simd);
    g2.bench_function("full_224px_simd", |b| {
        b.iter(|| black_box(full224.classify(black_box(&img))))
    });
    g2.bench_function("full_224px_int8", |b| {
        b.iter(|| black_box(full224_int8.classify(black_box(&img))))
    });
    set_gemm_kernel(GemmKernel::Tiled);
    g2.finish();
}

/// Writes this bench's rows into the `BENCH_inference.json` snapshot at
/// the workspace root, preserving the `serve` bench's `serve_*` rows.
fn write_snapshot(c: &Criterion) {
    let mut entries = Vec::new();
    for m in c.measurements() {
        entries.push(snapshot::measurement_line(
            &m.id,
            m.mean.as_nanos(),
            m.iterations,
        ));
    }
    let mean_of = |id: &str| {
        c.measurements()
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.mean.as_secs_f64())
    };
    let mut derived = Vec::new();
    for name in ["conv1_224px", "fire_expand3", "square_256"] {
        let tiled = mean_of(&format!("gemm/tiled/{name}"));
        if let (Some(s), Some(t)) = (mean_of(&format!("gemm/scalar/{name}")), tiled) {
            derived.push(snapshot::derived_line(
                &format!("gemm_speedup/{name}"),
                s / t,
            ));
        }
        // Explicit-SIMD and int8 kernels, both relative to the portable
        // tiled kernel (the acceptance baseline).
        if let (Some(t), Some(v)) = (tiled, mean_of(&format!("gemm/simd/{name}"))) {
            derived.push(snapshot::derived_line(
                &format!("gemm_simd_speedup/{name}"),
                t / v,
            ));
        }
        if let (Some(t), Some(v)) = (tiled, mean_of(&format!("gemm/int8/{name}"))) {
            derived.push(snapshot::derived_line(
                &format!("gemm_int8_speedup/{name}"),
                t / v,
            ));
        }
    }
    // VNNI tier vs AVX2 tier on the int8 GEMM (acceptance: >= 1.5x where
    // the host has both).
    for name in ["conv1_224px", "fire_expand3", "square_256"] {
        if let (Some(a), Some(v)) = (
            mean_of(&format!("gemm/int8_avx2/{name}")),
            mean_of(&format!("gemm/int8_vnni/{name}")),
        ) {
            derived.push(snapshot::derived_line(
                &format!("vnni_vs_avx2_speedup/{name}"),
                a / v,
            ));
        }
    }
    // Compile-time prepacking: GEMM-level repacked/prepacked pairs, and the
    // headline plan-level row — the per-call-packing full-224 int8 pass
    // over the prepacked fused one.
    for case in ["conv1_224px", "crossover_24x36x225"] {
        for tier in ["f32", "int8"] {
            if let (Some(r), Some(p)) = (
                mean_of(&format!("pack/{case}/{tier}_repacked")),
                mean_of(&format!("pack/{case}/{tier}_prepacked")),
            ) {
                derived.push(snapshot::derived_line(
                    &format!("prepack_speedup/{case}_{tier}"),
                    r / p,
                ));
            }
        }
    }
    if let (Some(r), Some(p)) = (
        mean_of("pack/int8_full224_repacked"),
        mean_of("fusion/int8_fused_full224"),
    ) {
        derived.push(snapshot::derived_line("prepack_full224_speedup", r / p));
    }
    // Plan-level pipelining vs the sequential reference (1.0 on a
    // single-core host, where the pipelined path collapses to sequential).
    for tier in ["f32", "int8"] {
        if let (Some(s), Some(p)) = (
            mean_of(&format!("pipeline/{tier}_seq_full224")),
            mean_of(&format!("pipeline/{tier}_pipelined_full224")),
        ) {
            derived.push(snapshot::derived_line(
                &format!("pipeline_full224_speedup/{tier}"),
                s / p,
            ));
        }
    }
    // Fused-vs-unfused execution plans (acceptance: >= 1.0 on both tiers)
    // and the isolated epilogue-vs-sweep GEMM comparisons.
    for tier in ["f32", "int8"] {
        if let (Some(u), Some(f)) = (
            mean_of(&format!("fusion/{tier}_unfused_full224")),
            mean_of(&format!("fusion/{tier}_fused_full224")),
        ) {
            derived.push(snapshot::derived_line(
                &format!("fused_full224_speedup/{tier}"),
                u / f,
            ));
        }
    }
    for (sweep, epi, name) in [
        (
            "fusion/f32_sweep_relu",
            "fusion/f32_epilogue_relu",
            "f32_relu",
        ),
        (
            "fusion/int8_sweep_requant",
            "fusion/int8_epilogue_requant",
            "int8_requant",
        ),
    ] {
        if let (Some(s), Some(e)) = (mean_of(sweep), mean_of(epi)) {
            derived.push(snapshot::derived_line(
                &format!("epilogue_vs_sweep_speedup/{name}"),
                s / e,
            ));
        }
    }
    // End-to-end paper-geometry classification across execution paths.
    let full_tiled = mean_of("classify_paper_geometry/full_224px");
    for (suffix, metric) in [
        ("simd", "simd_full224_speedup"),
        ("int8", "int8_full224_speedup"),
    ] {
        if let (Some(t), Some(v)) = (
            full_tiled,
            mean_of(&format!("classify_paper_geometry/full_224px_{suffix}")),
        ) {
            derived.push(snapshot::derived_line(metric, t / v));
        }
    }
    // Flight-recorder overhead at 1-in-16 sampling relative to tracing
    // off, as a percentage of the memo-hit submit path (negative values
    // are measurement noise: the off row is the floor).
    if let (Some(off), Some(on)) = (
        mean_of("telem/overhead_off"),
        mean_of("telem/overhead_sampled_16"),
    ) {
        derived.push(snapshot::derived_line(
            "telem_overhead_pct",
            (on - off) / off * 100.0,
        ));
    }
    let seed_n1 = mean_of("batch/classify_tensor/seed_scalar/n1");
    // Batch metrics for the portable tiled kernel (historic names kept for
    // cross-PR continuity) and the explicit-SIMD kernel (the shipping
    // default, prefixed `simd_`).
    for (kernel, prefix) in [("tiled", ""), ("simd", "simd_")] {
        let n1 = mean_of(&format!("batch/classify_tensor/{kernel}/n1"));
        for batch in [8usize, 32] {
            let nb = mean_of(&format!("batch/classify_tensor/{kernel}/n{batch}"));
            if let (Some(b1), Some(bn)) = (n1, nb) {
                // Per-image throughput gain of batching alone.
                derived.push(snapshot::derived_line(
                    &format!("{prefix}batch{batch}_per_image_speedup"),
                    b1 / (bn / batch as f64),
                ));
            }
            if let (Some(seed), Some(bn)) = (seed_n1, nb) {
                // Batched engine vs the seed's one-image-at-a-time scalar path.
                derived.push(snapshot::derived_line(
                    &format!("{prefix}batch{batch}_vs_seed_scalar_speedup"),
                    seed / (bn / batch as f64),
                ));
            }
        }
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    // This bench owns every row except the serve, cascade and ingest
    // benches' `serve_*` / `cascade*` / `ingest*` rows.
    match snapshot::merge_snapshot(std::path::Path::new(path), &entries, &derived, |name| {
        !name.starts_with("serve") && !name.starts_with("cascade") && !name.starts_with("ingest")
    }) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_gemm(&mut c);
    bench_pack(&mut c);
    bench_pipeline(&mut c);
    bench_fusion(&mut c);
    bench_batching(&mut c);
    bench_engine_hit_path(&mut c);
    bench_telem(&mut c);
    bench_inference(&mut c);
    if criterion::is_test_mode() {
        // Smoke run (`-- --test` / CI): everything executed, but the
        // clamped timings would make a misleading snapshot.
        println!("smoke mode: skipping BENCH_inference.json snapshot");
    } else {
        write_snapshot(&c);
    }
}
