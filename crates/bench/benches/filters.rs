//! Filter-list engine benchmarks: the cost of the block-list baseline that
//! PERCIVAL complements (every network request pays this in Brave).

use criterion::{criterion_group, criterion_main, Criterion};
use percival_filterlist::easylist::{synthetic_engine, SYNTHETIC_EASYLIST};
use percival_filterlist::{parse_list, FilterEngine, RequestInfo, ResourceType, Url};
use percival_util::Pcg32;
use percival_webgen::adnet;
use std::hint::black_box;
use std::time::Duration;

fn bench_filters(c: &mut Criterion) {
    let engine = synthetic_engine();
    let source = Url::parse("http://news0.web/").unwrap();

    // A realistic URL mix: ads, content, trackers.
    let mut rng = Pcg32::seed_from_u64(11);
    let mut urls = Vec::new();
    for _ in 0..64 {
        let n = adnet::pick_network(&mut rng, false);
        urls.push(Url::parse(&adnet::creative_url(&mut rng, n, "png")).unwrap());
        urls.push(Url::parse(&adnet::content_url(&mut rng, "news0.web", "png")).unwrap());
        urls.push(Url::parse(&adnet::tracker_url(&mut rng)).unwrap());
    }

    let mut g = c.benchmark_group("filterlist");
    g.measurement_time(Duration::from_secs(3));
    g.throughput(criterion::Throughput::Elements(urls.len() as u64));
    g.bench_function("check_mixed_urls", |b| {
        b.iter(|| {
            let mut blocked = 0usize;
            for u in &urls {
                let req = RequestInfo {
                    url: u,
                    source: &source,
                    resource_type: ResourceType::Image,
                };
                if engine.should_block(black_box(&req)) {
                    blocked += 1;
                }
            }
            black_box(blocked)
        })
    });
    g.bench_function("parse_builtin_list", |b| {
        b.iter(|| black_box(parse_list(black_box(SYNTHETIC_EASYLIST))))
    });
    g.bench_function("build_engine", |b| {
        b.iter(|| black_box(FilterEngine::from_list(black_box(SYNTHETIC_EASYLIST))))
    });
    g.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
