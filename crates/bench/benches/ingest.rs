//! Ingest-path benchmarks: everything that happens to a creative between
//! the renderer handing over bytes and the batch tensor being ready —
//! decode, the u8-domain fixed-point resize, and the fused
//! resize-then-normalize pipeline against the seed's full-resolution f32
//! reference (`Classifier::preprocess_reference`), at real ad-slot
//! geometries. Also times formation-time `preprocess_into` writes against
//! the old preprocess-then-`copy_sample_from` assembly they replaced, and
//! the planar normalize / direct u8→i8 quantize kernels in isolation.
//!
//! Run with `cargo bench -p percival_bench --bench ingest`. Outside smoke
//! mode this merges its `ingest/*` rows (and the derived
//! `ingest_full_speedup` headline — acceptance: >= 3x over the reference
//! on the 970x250 billboard) into the `BENCH_inference.json` snapshot at
//! the workspace root.

use criterion::Criterion;
use percival_bench::snapshot;
use percival_core::arch::INPUT_CHANNELS;
use percival_core::Classifier;
use percival_imgcodec::sniff::{decode_auto, encode_as, ImageFormat};
use percival_imgcodec::Bitmap;
use percival_tensor::gemm_i8::scale_for_max;
use percival_tensor::ingest::{normalize_into, quantize_planar_from_u8};
use percival_tensor::{Shape, Tensor, Workspace};
use percival_util::Pcg32;
use std::hint::black_box;
use std::time::Duration;

/// The paper's CNN input edge.
const INPUT: usize = 224;

/// IAB ad-slot geometries: billboard, medium rectangle, skyscraper.
const SLOTS: [(&str, usize, usize); 3] = [
    ("970x250", 970, 250),
    ("300x250", 300, 250),
    ("120x600", 120, 600),
];

/// An ad-like creative (webgen's synthetic ad renderer), so decode and
/// resize see realistic content rather than incompressible noise.
fn creative(w: usize, h: usize, seed: u64) -> Bitmap {
    let mut rng = Pcg32::seed_from_u64(seed);
    percival_webgen::generate_ad(
        &mut rng,
        w,
        h,
        percival_webgen::Script::Latin,
        percival_webgen::AdStyle::Rectangle,
        percival_webgen::images::AdCues::default(),
    )
}

fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest");
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);

    let per_sample = INPUT_CHANNELS * INPUT * INPUT;
    let mut ws = Workspace::new();
    for (slot, w, h) in SLOTS {
        let img = creative(w, h, 9);

        // Decode: the raster-task work in front of the ingest kernels.
        let png = encode_as(&img, ImageFormat::Png);
        g.bench_function(&format!("decode_png/{slot}"), |b| {
            b.iter(|| black_box(decode_auto(black_box(&png)).unwrap()))
        });

        // The fixed-point u8-domain resampler on its own — the only
        // per-pixel-of-source work left on the submit path.
        g.bench_function(&format!("resize_u8/{slot}"), |b| {
            b.iter(|| {
                let r = Classifier::resize_to(black_box(&img), INPUT, &mut ws);
                ws.recycle_u8(black_box(r).into_data());
            })
        });

        // The full fused pipeline as batch formation runs it (resize in
        // u8, normalize the 224x224 result straight into the batch
        // window), vs the seed pipeline it replaced (normalize the whole
        // creative to f32, then bilinearly resize the planes). Their
        // ratio is the `ingest_speedup/*` family below.
        let mut dst = vec![0.0f32; per_sample];
        g.bench_function(&format!("preprocess_fused/{slot}"), |b| {
            b.iter(|| Classifier::preprocess_into(black_box(&img), INPUT, &mut dst, &mut ws))
        });
        g.bench_function(&format!("preprocess_reference/{slot}"), |b| {
            b.iter(|| black_box(Classifier::preprocess_reference(black_box(&img), INPUT)))
        });
    }

    // The f32-tier normalize and the int8 tier's direct u8→i8 quantize,
    // isolated over an already-resized 224x224 sample: the entire float
    // work remaining per queued creative at formation time.
    let resized = Classifier::resize_to(&creative(300, 250, 9), INPUT, &mut ws);
    let mut dst = vec![0.0f32; per_sample];
    g.bench_function("normalize_224", |b| {
        b.iter(|| normalize_into(black_box(resized.data()), INPUT, &mut dst))
    });
    let mut qdst = vec![0i8; per_sample];
    let scale = scale_for_max(resized.max_abs());
    g.bench_function("quantize_from_u8_224", |b| {
        b.iter(|| quantize_planar_from_u8(black_box(resized.data()), INPUT, scale, &mut qdst))
    });
    ws.recycle_u8(resized.into_data());

    // Batch assembly: fused formation-time writes vs the old two-pass
    // preprocess-then-copy, over an 8-slot batch of medium rectangles.
    let batch: Vec<Bitmap> = (0..8).map(|i| creative(300, 250, 20 + i)).collect();
    let mut tensor = Tensor::zeros(Shape::new(batch.len(), INPUT_CHANNELS, INPUT, INPUT));
    g.bench_function("batch8_preprocess_into", |b| {
        b.iter(|| {
            for (i, img) in batch.iter().enumerate() {
                Classifier::preprocess_into(black_box(img), INPUT, tensor.sample_mut(i), &mut ws);
            }
        })
    });
    g.bench_function("batch8_preprocess_copy", |b| {
        b.iter(|| {
            for (i, img) in batch.iter().enumerate() {
                let t = Classifier::preprocess(black_box(img), INPUT);
                tensor.copy_sample_from(i, &t, 0);
            }
        })
    });
    g.finish();
}

/// Merges this bench's `ingest/*` rows and derived speedups into the
/// shared `BENCH_inference.json` snapshot.
fn write_snapshot(c: &Criterion) {
    let mut entries = Vec::new();
    for m in c.measurements() {
        entries.push(snapshot::measurement_line(
            &m.id,
            m.mean.as_nanos(),
            m.iterations,
        ));
    }
    let mean_of = |id: &str| {
        c.measurements()
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.mean.as_secs_f64())
    };
    let mut derived = Vec::new();
    // Fused u8-domain preprocess vs the seed's full-resolution f32
    // pipeline, per slot; the 970x250 billboard row doubles as the
    // headline `ingest_full_speedup` (acceptance: >= 3x).
    for (slot, _, _) in SLOTS {
        if let (Some(r), Some(f)) = (
            mean_of(&format!("ingest/preprocess_reference/{slot}")),
            mean_of(&format!("ingest/preprocess_fused/{slot}")),
        ) {
            derived.push(snapshot::derived_line(
                &format!("ingest_speedup/{slot}"),
                r / f,
            ));
            if slot == "970x250" {
                derived.push(snapshot::derived_line("ingest_full_speedup", r / f));
            }
        }
    }
    // Formation-time fused writes vs the preprocess-then-copy assembly.
    if let (Some(copy), Some(into)) = (
        mean_of("ingest/batch8_preprocess_copy"),
        mean_of("ingest/batch8_preprocess_into"),
    ) {
        derived.push(snapshot::derived_line(
            "ingest_into_vs_copy_speedup",
            copy / into,
        ));
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    // This bench owns exactly the `ingest*` rows.
    match snapshot::merge_snapshot(std::path::Path::new(path), &entries, &derived, |name| {
        name.starts_with("ingest")
    }) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_ingest(&mut c);
    if criterion::is_test_mode() {
        // Smoke run (`-- --test` / CI): everything executed, but the
        // clamped timings would make a misleading snapshot.
        println!("smoke mode: skipping BENCH_inference.json snapshot");
    } else {
        write_snapshot(&c);
    }
}
