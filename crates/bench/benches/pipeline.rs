//! End-to-end page-render benchmarks: the per-stage costs behind the
//! Figure 14/15 render-time experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use percival_core::arch::percival_net_slim;
use percival_core::{Classifier, PercivalHook};
use percival_crawler::adapters::{store_from_corpus, EngineNetworkFilter};
use percival_filterlist::easylist::synthetic_engine;
use percival_nn::init::kaiming_init;
use percival_renderer::hook::NoopInterceptor;
use percival_renderer::net::AllowAll;
use percival_renderer::RenderPipeline;
use percival_util::Pcg32;
use percival_webgen::sites::{generate_corpus, CorpusConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_pipeline(c: &mut Criterion) {
    let corpus = generate_corpus(CorpusConfig {
        n_sites: 4,
        pages_per_site: 1,
        seed: 77,
        ..Default::default()
    });
    let store = store_from_corpus(&corpus);
    let page = corpus.pages[0].clone();
    let pipeline = RenderPipeline::default();
    let engine = synthetic_engine();
    let shields = EngineNetworkFilter::new(&engine);

    let mut model = percival_net_slim(4);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
    let classifier = Classifier::new(model, 64);

    let mut g = c.benchmark_group("render_page");
    g.measurement_time(Duration::from_secs(4));
    g.sample_size(15);
    g.bench_function("chromium_baseline", |b| {
        b.iter(|| {
            black_box(
                pipeline
                    .render(&store, &page, &NoopInterceptor, &AllowAll, &[])
                    .unwrap(),
            )
        })
    });
    g.bench_function("chromium_percival", |b| {
        // Fresh hook per iteration so memoization does not flatten the cost.
        b.iter(|| {
            let hook = PercivalHook::new(classifier.clone());
            black_box(
                pipeline
                    .render(&store, &page, &hook, &AllowAll, &[])
                    .unwrap(),
            )
        })
    });
    g.bench_function("chromium_percival_memoized", |b| {
        // One persistent hook: steady-state cost with a warm verdict cache.
        let hook = PercivalHook::new(classifier.clone());
        let _ = pipeline.render(&store, &page, &hook, &AllowAll, &[]);
        b.iter(|| {
            black_box(
                pipeline
                    .render(&store, &page, &hook, &AllowAll, &[])
                    .unwrap(),
            )
        })
    });
    g.bench_function("brave_shields", |b| {
        b.iter(|| {
            black_box(
                pipeline
                    .render(&store, &page, &NoopInterceptor, &shields, &[])
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
