//! Serving-layer benchmarks: single engine vs the sharded service, and
//! deadline/overload behavior under synthetic traffic.
//!
//! Run with `cargo bench -p percival_bench --bench serve`. Scenarios:
//!
//! 1. **Peak throughput** — closed-loop distinct-creative traffic through
//!    (a) one `InferenceEngine` and (b) the sharded service at the same
//!    total thread budget. Emits `serve_single_engine/peak` and
//!    `serve_sharded/peak` (+ `serve_sharded_vs_single_speedup`). On a
//!    single-core host the speedup hovers near 1.0 (both configurations
//!    timeslice one CPU); the row exists so multi-core hosts track it.
//! 2. **Overload** — open-loop at 2x calibrated capacity with the `Shed`
//!    policy: shed rate and the p99 of *admitted* requests against the
//!    deadline (`serve_overload_*`, `serve_p99_within_deadline`).
//! 3. **Hot keys** — Zipf(1.1) traffic exercising memoization and
//!    single-flight (`serve_hotkey/*`).
//! 4. **Bursts + Degrade** — square-wave arrivals under the `Degrade`
//!    policy: everything is served, pressured work rides the int8 tier
//!    (`serve_burst_degrade/*`).
//!
//! Rows merge into `BENCH_inference.json` next to the kernel rows (this
//! bench owns the `serve_*` names; the `inference` bench owns the rest).
//! `-- --test` smoke-runs everything with tiny request counts and skips
//! the snapshot.

use percival_bench::snapshot;
use percival_core::arch::percival_net_slim;
use percival_core::{Classifier, EngineConfig, InferenceEngine};
use percival_nn::init::kaiming_init;
use percival_serve::loadgen::{self, calibrate_capacity_rps, TrafficConfig, TrafficPattern};
use percival_serve::{ClassificationService, OverloadPolicy, ServiceConfig};
use percival_util::Pcg32;
use std::time::{Duration, Instant};

fn classifier() -> Classifier {
    let mut model = percival_net_slim(4);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
    Classifier::new(model, 32)
}

/// Shards used for the "sharded" rows: every hardware thread, but at least
/// two so sharding/stealing is exercised even on one core.
fn shard_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

struct Rows {
    measurements: Vec<String>,
    derived: Vec<String>,
}

impl Rows {
    fn measurement(&mut self, id: &str, mean: Duration, iterations: u64) {
        println!("{id:<40} time: {mean:>12.3?}   ({iterations} iterations)");
        self.measurements
            .push(snapshot::measurement_line(id, mean.as_nanos(), iterations));
    }

    fn derived(&mut self, metric: &str, value: f64) {
        println!("{metric:<40} value: {value:.3}");
        self.derived.push(snapshot::derived_line(metric, value));
    }
}

/// Closed-loop distinct-creative throughput of one `InferenceEngine`
/// (requests per second), the single-queue/single-batcher baseline.
fn single_engine_rps(requests: usize) -> f64 {
    let traffic = TrafficConfig {
        requests,
        creatives: requests,
        zipf_s: -1.0, // distinct round-robin, same sequence the sharded run gets
        edge: 32,
        pattern: TrafficPattern::ClosedLoop,
        ..Default::default()
    };
    let creatives = loadgen::synthesize_creatives(&traffic);
    let sequence = loadgen::request_sequence(&traffic);
    let eng = InferenceEngine::new(classifier(), EngineConfig::default());
    let start = Instant::now();
    let tickets: Vec<_> = sequence
        .iter()
        .map(|&i| eng.submit(&creatives[i]))
        .collect();
    eng.flush();
    let wall = start.elapsed();
    for t in &tickets {
        assert!(t.poll().is_some(), "engine lost a ticket");
    }
    println!("engine stats: {}", eng.stats().snapshot());
    requests as f64 / wall.as_secs_f64().max(1e-9)
}

fn sharded_service(overload: OverloadPolicy, deadline: Duration) -> ClassificationService {
    ClassificationService::new(
        classifier(),
        ServiceConfig {
            shards: shard_count(),
            overload,
            deadline,
            ..Default::default()
        },
    )
}

fn main() {
    let smoke = criterion::is_test_mode();
    let requests = if smoke { 48 } else { 1024 };
    let mut rows = Rows {
        measurements: Vec::new(),
        derived: Vec::new(),
    };

    // --- Scenario 1: peak throughput, single engine vs sharded service ---
    let single_rps = single_engine_rps(requests);
    rows.measurement(
        "serve_single_engine/peak",
        Duration::from_secs_f64(1.0 / single_rps.max(1e-9)),
        requests as u64,
    );
    let svc = sharded_service(OverloadPolicy::Block, Duration::from_secs(600));
    let peak = loadgen::run(
        &svc,
        &TrafficConfig {
            requests,
            creatives: requests,
            zipf_s: -1.0,
            edge: 32,
            pattern: TrafficPattern::ClosedLoop,
            ..Default::default()
        },
    );
    assert_eq!(peak.lost, 0, "sharded service lost tickets");
    rows.measurement(
        "serve_sharded/peak",
        Duration::from_secs_f64(1.0 / peak.achieved_rps.max(1e-9)),
        requests as u64,
    );
    rows.derived(
        "serve_sharded_vs_single_speedup",
        peak.achieved_rps / single_rps.max(1e-9),
    );
    println!("{peak}");

    // --- Scenario 2: 2x-capacity overload with Shed ---
    let capacity = {
        let svc = sharded_service(OverloadPolicy::Block, Duration::from_secs(600));
        calibrate_capacity_rps(
            &svc,
            &TrafficConfig {
                creatives: if smoke { 32 } else { 256 },
                edge: 32,
                ..Default::default()
            },
        )
        .max(20.0)
    };
    let deadline = Duration::from_secs_f64((16.0 / capacity).max(0.05));
    let svc = ClassificationService::new(
        classifier(),
        ServiceConfig {
            shards: shard_count(),
            overload: OverloadPolicy::Shed,
            deadline,
            queue_capacity: 64,
            ..Default::default()
        },
    );
    let overload = loadgen::run(
        &svc,
        &TrafficConfig {
            requests,
            creatives: requests,
            zipf_s: -1.0,
            edge: 32,
            pattern: TrafficPattern::Steady(capacity * 2.0),
            ..Default::default()
        },
    );
    assert_eq!(overload.lost, 0, "overload run lost tickets");
    rows.measurement(
        "serve_overload/p99_admitted",
        overload.latency.p99,
        overload.classified as u64,
    );
    rows.measurement("serve_overload/deadline", deadline, 1);
    rows.derived(
        "serve_overload_shed_rate",
        overload.shed as f64 / overload.submitted as f64,
    );
    rows.derived(
        "serve_p99_within_deadline",
        if overload.latency.p99 <= deadline {
            1.0
        } else {
            0.0
        },
    );
    println!("capacity {capacity:.0} rps, deadline {deadline:?}\n{overload}");

    // --- Scenario 3: hot-key skew (Zipf 1.1 over a small pool) ---
    let svc = sharded_service(OverloadPolicy::Block, Duration::from_secs(600));
    let hot = loadgen::run(
        &svc,
        &TrafficConfig {
            requests,
            creatives: 32,
            zipf_s: 1.1,
            edge: 32,
            pattern: TrafficPattern::ClosedLoop,
            ..Default::default()
        },
    );
    assert_eq!(hot.lost, 0);
    rows.measurement(
        "serve_hotkey/peak",
        Duration::from_secs_f64(1.0 / hot.achieved_rps.max(1e-9)),
        requests as u64,
    );
    rows.derived("serve_hotkey_dedup_rate", hot.service.dedup_rate());
    println!("{hot}");

    // --- Scenario 4: bursty arrivals under Degrade ---
    let svc = ClassificationService::new(
        classifier(),
        ServiceConfig {
            shards: shard_count(),
            overload: OverloadPolicy::Degrade,
            deadline: Duration::from_secs_f64((4.0 / capacity).max(0.01)),
            queue_capacity: 16,
            ..Default::default()
        },
    );
    let burst = loadgen::run(
        &svc,
        &TrafficConfig {
            requests,
            creatives: requests,
            zipf_s: -1.0,
            edge: 32,
            pattern: TrafficPattern::Bursty {
                rps: capacity * 4.0,
                period: Duration::from_millis(50),
            },
            ..Default::default()
        },
    );
    assert_eq!(burst.lost, 0);
    assert_eq!(burst.shed, 0, "Degrade never rejects");
    rows.measurement(
        "serve_burst_degrade/p99",
        burst.latency.p99,
        burst.classified as u64,
    );
    rows.derived(
        "serve_burst_degrade_rate",
        burst.service.degraded() as f64 / burst.submitted as f64,
    );
    println!("{burst}");

    if smoke {
        println!("smoke mode: skipping BENCH_inference.json snapshot");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
        // This bench owns exactly the `serve_*` rows.
        match snapshot::merge_snapshot(
            std::path::Path::new(path),
            &rows.measurements,
            &rows.derived,
            |name| name.starts_with("serve"),
        ) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
