//! Cascade front-end benchmarks: the cost of each tier and what the
//! cascade buys end to end.
//!
//! Run with `cargo bench -p percival_bench --bench cascade`. Scenarios:
//!
//! 1. **Tokenized vs linear matching** — the same `FilterEngine` checked
//!    through its token index and through the linear reference scan, on an
//!    EasyList-scale list (`scaled_list(4096)`). Emits
//!    `cascade_match_tokenized/scaled4096`, `cascade_match_linear/scaled4096`
//!    and `cascade_tokenized_vs_linear_speedup`; verdict equivalence over
//!    the whole URL mix is asserted, and the speedup must clear 10x.
//! 2. **Engine cold start** — building from list text vs restoring the
//!    binary snapshot (`cascade_engine/*`, `cascade_snapshot_coldstart_speedup`).
//! 3. **Tier hit rates** — the mixed load-generator workload through the
//!    full cascade: per-tier absorption fractions as derived rows
//!    (`cascade_tier0_fraction`, `cascade_tier1_fraction`,
//!    `cascade_early_fraction` — the last must clear 0.60).
//! 4. **Mixed-workload throughput** — the same traffic served with the
//!    full cascade vs CNN-only (`cascade_full_mix/*`, `cascade_cnn_only_mix/*`,
//!    `cascade_full_mix_speedup` — must clear 2x), with the cascade's
//!    per-request decisions asserted identical to a sequential reference
//!    pass (`cascade_verdict_changes` stays 0).
//!
//! Rows merge into `BENCH_inference.json`; this bench owns the
//! `cascade_*` names. `-- --test` smoke-runs with tiny counts and skips
//! the snapshot and the host-speed assertions.

use percival_bench::snapshot;
use percival_core::arch::percival_net_slim;
use percival_core::cascade::{Cascade, CascadeConfig};
use percival_core::Classifier;
use percival_filterlist::easylist::scaled_list;
use percival_filterlist::{FilterEngine, RequestInfo, ResourceType, Url};
use percival_nn::init::kaiming_init;
use percival_serve::loadgen::{self, TrafficConfig, TrafficPattern};
use percival_serve::{ClassificationService, OverloadPolicy, ServiceConfig};
use percival_util::Pcg32;
use percival_webgen::adnet;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn classifier() -> Classifier {
    let mut model = percival_net_slim(4);
    kaiming_init(&mut model, &mut Pcg32::seed_from_u64(9));
    Classifier::new(model, 32)
}

fn shard_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

fn service() -> ClassificationService {
    ClassificationService::new(
        classifier(),
        ServiceConfig {
            shards: shard_count(),
            overload: OverloadPolicy::Block,
            deadline: Duration::from_secs(600),
            ..Default::default()
        },
    )
}

struct Rows {
    measurements: Vec<String>,
    derived: Vec<String>,
}

impl Rows {
    fn measurement(&mut self, id: &str, mean: Duration, iterations: u64) {
        println!("{id:<44} time: {mean:>12.3?}   ({iterations} iterations)");
        self.measurements
            .push(snapshot::measurement_line(id, mean.as_nanos(), iterations));
    }

    fn derived(&mut self, metric: &str, value: f64) {
        println!("{metric:<44} value: {value:.3}");
        self.derived.push(snapshot::derived_line(metric, value));
    }
}

/// A realistic URL mix against the scaled list: corpus ads, trackers and
/// content, plus scale-out rule hits and never-matching long-tail URLs.
fn url_mix() -> Vec<Url> {
    let mut rng = Pcg32::seed_from_u64(11);
    let mut urls = Vec::new();
    for i in 0..48u32 {
        let n = adnet::pick_network(&mut rng, false);
        urls.push(Url::parse(&adnet::creative_url(&mut rng, n, "png")).unwrap());
        urls.push(Url::parse(&adnet::content_url(&mut rng, "news0.web", "png")).unwrap());
        urls.push(Url::parse(&adnet::tracker_url(&mut rng)).unwrap());
        // A scale-out rule hit and a miss in the same host shape.
        urls.push(
            Url::parse(&format!(
                "http://adnet-x{:05}.web/a/{i}.png",
                (i * 5) % 4096
            ))
            .unwrap(),
        );
        urls.push(Url::parse(&format!("http://longtail-{i}.web/media/{i}.png")).unwrap());
    }
    urls
}

/// Mean per-check latency of `check` over `rounds` passes of the mix, and
/// the verdict tally (so both paths can be compared for equivalence).
fn time_checks(
    engine: &FilterEngine,
    urls: &[Url],
    source: &Url,
    rounds: usize,
    check: impl Fn(&FilterEngine, &RequestInfo<'_>) -> percival_filterlist::Verdict,
) -> (Duration, Vec<percival_filterlist::Verdict>) {
    let verdicts: Vec<_> = urls
        .iter()
        .map(|u| {
            check(
                engine,
                &RequestInfo {
                    url: u,
                    source,
                    resource_type: ResourceType::Image,
                },
            )
        })
        .collect();
    let start = Instant::now();
    for _ in 0..rounds {
        for u in urls {
            let req = RequestInfo {
                url: u,
                source,
                resource_type: ResourceType::Image,
            };
            black_box(check(engine, black_box(&req)));
        }
    }
    let total = start.elapsed();
    let checks = (rounds * urls.len()) as u32;
    (total / checks.max(1), verdicts)
}

fn main() {
    let smoke = criterion::is_test_mode();
    let mut rows = Rows {
        measurements: Vec::new(),
        derived: Vec::new(),
    };

    // --- Scenario 1: tokenized vs linear on an EasyList-scale list ---
    let scale = if smoke { 512 } else { 4096 };
    let list = scaled_list(scale);
    let engine = FilterEngine::from_list(&list);
    let urls = url_mix();
    let source = Url::parse("http://news0.web/").unwrap();
    let (tok_rounds, lin_rounds) = if smoke { (8, 1) } else { (512, 8) };
    let (tok_mean, tok_verdicts) =
        time_checks(&engine, &urls, &source, tok_rounds, |e, r| e.check(r));
    let (lin_mean, lin_verdicts) = time_checks(&engine, &urls, &source, lin_rounds, |e, r| {
        e.check_linear(r)
    });
    assert_eq!(
        tok_verdicts, lin_verdicts,
        "token index and linear scan must agree on every URL"
    );
    rows.measurement(
        &format!("cascade_match_tokenized/scaled{scale}"),
        tok_mean,
        (tok_rounds * urls.len()) as u64,
    );
    rows.measurement(
        &format!("cascade_match_linear/scaled{scale}"),
        lin_mean,
        (lin_rounds * urls.len()) as u64,
    );
    let match_speedup = lin_mean.as_secs_f64() / tok_mean.as_secs_f64().max(1e-12);
    rows.derived("cascade_tokenized_vs_linear_speedup", match_speedup);
    if !smoke {
        assert!(
            match_speedup >= 10.0,
            "tokenized matching must be >= 10x linear on a {scale}-rule list, got {match_speedup:.1}x"
        );
    }

    // --- Scenario 2: engine cold start, parse vs snapshot restore ---
    let bytes = engine.to_snapshot_bytes();
    let build_iters = if smoke { 3 } else { 20 };
    let start = Instant::now();
    for _ in 0..build_iters {
        black_box(FilterEngine::from_list(black_box(&list)));
    }
    let from_list = start.elapsed() / build_iters;
    let start = Instant::now();
    for _ in 0..build_iters {
        black_box(FilterEngine::from_snapshot_bytes(black_box(&bytes)).unwrap());
    }
    let from_snapshot = start.elapsed() / build_iters;
    rows.measurement(
        &format!("cascade_engine/from_list_scaled{scale}"),
        from_list,
        build_iters as u64,
    );
    rows.measurement(
        &format!("cascade_engine/from_snapshot_scaled{scale}"),
        from_snapshot,
        build_iters as u64,
    );
    rows.derived(
        "cascade_snapshot_coldstart_speedup",
        from_list.as_secs_f64() / from_snapshot.as_secs_f64().max(1e-12),
    );

    // --- Scenario 3 + 4: the mixed workload, full cascade vs CNN-only ---
    let traffic = TrafficConfig {
        seed: 42,
        creatives: if smoke { 24 } else { 96 },
        ad_fraction: 0.5,
        zipf_s: 0.9,
        requests: if smoke { 96 } else { 1024 },
        pattern: TrafficPattern::ClosedLoop,
        edge: 32,
    };

    let svc = service();
    let full_cascade = Arc::new(Cascade::synthetic_with(CascadeConfig::default()));
    let full = loadgen::run_cascade(&svc, &full_cascade, &traffic);
    assert_eq!(full.lost, 0, "full-cascade run lost tickets");
    println!("{full}");

    // Sequential reference: one fresh cascade, every request decided in
    // request order on the same metadata. The pipelined run must produce
    // byte-identical decisions — the cascade buys throughput, never a
    // different verdict.
    let reference = Cascade::synthetic_with(CascadeConfig::default());
    let metas = loadgen::synthesize_creative_meta(&traffic);
    let changed = loadgen::request_sequence(&traffic)
        .iter()
        .zip(full.decisions.iter())
        .filter(|&(&c, &got)| {
            let m = &metas[c];
            reference.decide(&m.url, &m.source_url, Some(&m.structural)) != got
        })
        .count();
    assert_eq!(
        changed, 0,
        "cascade changed {changed} verdicts vs the sequential reference"
    );
    rows.derived("cascade_verdict_changes", changed as f64);

    rows.derived(
        "cascade_tier0_fraction",
        (full.tier0_blocked + full.tier0_exempted) as f64 / full.requests as f64,
    );
    rows.derived(
        "cascade_tier1_fraction",
        (full.tier1_blocked + full.tier1_kept) as f64 / full.requests as f64,
    );
    rows.derived("cascade_early_fraction", full.early_fraction());
    if !smoke {
        assert!(
            full.early_fraction() >= 0.6,
            "mixed workload must resolve >= 60% early, got {:.3}",
            full.early_fraction()
        );
    }

    let svc = service();
    let off = CascadeConfig {
        network_filter: false,
        structural: false,
        ..CascadeConfig::default()
    };
    let cnn_only = loadgen::run_cascade(&svc, &Arc::new(Cascade::synthetic_with(off)), &traffic);
    assert_eq!(cnn_only.lost, 0, "CNN-only run lost tickets");
    assert_eq!(cnn_only.cnn_submitted, cnn_only.requests);
    println!("{cnn_only}");

    rows.measurement(
        "cascade_full_mix/throughput",
        Duration::from_secs_f64(1.0 / full.achieved_rps.max(1e-9)),
        full.requests as u64,
    );
    rows.measurement(
        "cascade_cnn_only_mix/throughput",
        Duration::from_secs_f64(1.0 / cnn_only.achieved_rps.max(1e-9)),
        cnn_only.requests as u64,
    );
    let mix_speedup = full.achieved_rps / cnn_only.achieved_rps.max(1e-9);
    rows.derived("cascade_full_mix_speedup", mix_speedup);
    if !smoke {
        assert!(
            mix_speedup >= 2.0,
            "full cascade must serve the mixed workload >= 2x faster than CNN-only, got {mix_speedup:.2}x"
        );
    }

    if smoke {
        println!("smoke mode: skipping BENCH_inference.json snapshot");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
        // This bench owns exactly the `cascade_*` rows.
        match snapshot::merge_snapshot(
            std::path::Path::new(path),
            &rows.measurements,
            &rows.derived,
            |name| name.starts_with("cascade"),
        ) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
