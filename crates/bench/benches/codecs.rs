//! Image-decode throughput: the work the raster task does before the hook
//! runs ("the raster task decodes the given image into raw pixels").

use criterion::{criterion_group, criterion_main, Criterion};
use percival_imgcodec::sniff::{decode_auto, encode_as, ImageFormat};
use percival_imgcodec::Bitmap;
use percival_util::Pcg32;
use std::hint::black_box;
use std::time::Duration;

fn ad_like_bitmap(edge: usize) -> Bitmap {
    let mut rng = Pcg32::seed_from_u64(4);
    percival_webgen::generate_ad(
        &mut rng,
        edge,
        edge,
        percival_webgen::Script::Latin,
        percival_webgen::AdStyle::Rectangle,
        percival_webgen::images::AdCues::default(),
    )
}

fn bench_codecs(c: &mut Criterion) {
    let img = ad_like_bitmap(256);
    let mut g = c.benchmark_group("decode_256px");
    g.measurement_time(Duration::from_secs(3));
    for fmt in [
        ImageFormat::Png,
        ImageFormat::Gif,
        ImageFormat::Qoi,
        ImageFormat::Bmp,
    ] {
        let encoded = encode_as(&img, fmt);
        g.throughput(criterion::Throughput::Bytes(encoded.len() as u64));
        g.bench_function(fmt.extension(), |b| {
            b.iter(|| black_box(decode_auto(black_box(&encoded)).unwrap()))
        });
    }
    g.finish();

    let mut g2 = c.benchmark_group("encode_256px");
    g2.measurement_time(Duration::from_secs(3));
    for fmt in [ImageFormat::Png, ImageFormat::Qoi] {
        g2.bench_function(fmt.extension(), |b| {
            b.iter(|| black_box(encode_as(black_box(&img), fmt)))
        });
    }
    g2.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
