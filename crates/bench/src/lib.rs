//! Criterion benchmark crate for PERCIVAL; see `benches/`.
//!
//! Besides the bench binaries, this crate hosts [`snapshot`]: the shared
//! writer for the repository-root `BENCH_inference.json`, which several
//! bench binaries co-own (the `inference` bench writes the kernel/batching
//! rows, the `serve` bench the `serve_*` serving rows).

pub mod snapshot;
