//! Criterion benchmark crate for PERCIVAL; see `benches/`.
