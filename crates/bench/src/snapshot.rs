//! Shared writer for the repository-root `BENCH_inference.json`.
//!
//! The snapshot is co-owned by several bench binaries: the `inference`
//! bench owns the kernel/batching/classification rows and the `serve`
//! bench owns the `serve_*` serving rows. Each binary rewrites only its own
//! rows and preserves the other's, so running the benches in any order (or
//! only one of them) never loses data. The format is deliberately
//! line-oriented JSON — one object per line — so this merge needs no JSON
//! parser.

use std::path::Path;

/// Formats one measurement row.
pub fn measurement_line(id: &str, mean_ns: u128, iterations: u64) -> String {
    format!("    {{\"id\": \"{id}\", \"mean_ns\": {mean_ns}, \"iterations\": {iterations}}}")
}

/// Formats one derived-metric row.
pub fn derived_line(metric: &str, value: f64) -> String {
    format!("    {{\"metric\": \"{metric}\", \"value\": {value:.3}}}")
}

/// Extracts the string value of `"key": "..."` from a single-row line.
fn extract(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Rewrites the snapshot at `path`: existing rows whose id/metric matches
/// `owned` are dropped (the caller owns them and supplies replacements);
/// everything else is preserved; the new rows are appended.
pub fn merge_snapshot(
    path: &Path,
    measurements: &[String],
    derived: &[String],
    owned: impl Fn(&str) -> bool,
) -> std::io::Result<()> {
    let mut keep_meas: Vec<String> = Vec::new();
    let mut keep_der: Vec<String> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        for line in text.lines() {
            let row = line.trim_end().trim_end_matches(',');
            if let Some(id) = extract(row, "id") {
                if !owned(&id) {
                    keep_meas.push(row.to_string());
                }
            } else if let Some(metric) = extract(row, "metric") {
                if !owned(&metric) {
                    keep_der.push(row.to_string());
                }
            }
        }
    }
    keep_meas.extend(measurements.iter().cloned());
    keep_der.extend(derived.iter().cloned());
    let json = format!(
        "{{\n  \"bench\": \"inference\",\n  \"measurements\": [\n{}\n  ],\n  \"derived\": [\n{}\n  ]\n}}\n",
        keep_meas.join(",\n"),
        keep_der.join(",\n")
    );
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_replaces_only_owned_rows() {
        let dir = std::env::temp_dir().join("percival_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let m1 = vec![
            measurement_line("gemm/scalar/x", 100, 5),
            measurement_line("serve_old/peak", 999, 1),
        ];
        let d1 = vec![derived_line("gemm_speedup/x", 1.5)];
        merge_snapshot(&path, &m1, &d1, |_| true).unwrap();

        // Second writer owns only serve rows: gemm rows must survive.
        let m2 = vec![measurement_line("serve_sharded/peak", 500, 2)];
        let d2 = vec![derived_line("serve_speedup", 2.0)];
        merge_snapshot(&path, &m2, &d2, |name| name.starts_with("serve")).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("gemm/scalar/x"), "foreign rows preserved");
        assert!(text.contains("gemm_speedup/x"));
        assert!(text.contains("serve_sharded/peak"), "new rows written");
        assert!(text.contains("serve_speedup"));
        assert!(!text.contains("serve_old"), "owned rows replaced");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn extract_parses_row_lines() {
        assert_eq!(
            extract("  {\"id\": \"a/b/c\", \"mean_ns\": 1}", "id").as_deref(),
            Some("a/b/c")
        );
        assert_eq!(extract("  {\"metric\": \"m\", \"value\": 1.0}", "id"), None);
    }
}
